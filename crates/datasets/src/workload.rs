//! Random update workloads (paper Section V-C).
//!
//! The paper evaluates sequences of random insert/delete operations (90 %
//! inserts, 10 % deletes) and sequences of random renames to fresh labels. The
//! generator below produces such sequences against an evolving document: every
//! generated operation is applied to an uncompressed reference copy so that the
//! next operation's target index is valid, mirroring how the paper derives its
//! workloads from the original documents.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sltgrammar::{NodeKind, RhsTree, SymbolTable};
use xmltree::binary::to_binary;
use xmltree::updates::{apply_update, UpdateOp};
use xmltree::{XmlNodeId, XmlTree};

/// Mix of operations in a generated workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadMix {
    /// Probability of an insert (the remainder are deletes).
    pub insert_probability: f64,
    /// Maximum number of elements in an inserted fragment.
    pub max_fragment_size: usize,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        // The paper's mix: 90 % inserts, 10 % deletes.
        WorkloadMix {
            insert_probability: 0.9,
            max_fragment_size: 6,
        }
    }
}

/// Generates a sequence of `count` random insert/delete operations against
/// `xml`, 90 % inserts / 10 % deletes by default. Operations are valid when
/// applied in order starting from `xml`.
pub fn random_insert_delete_sequence(
    xml: &XmlTree,
    count: usize,
    seed: u64,
    mix: WorkloadMix,
) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = xml.labels();
    let mut symbols = SymbolTable::new();
    let mut reference = to_binary(xml, &mut symbols).expect("valid document");
    let mut ops = Vec::with_capacity(count);

    for _ in 0..count {
        let op = if rng.gen_bool(mix.insert_probability) {
            let target = random_node(&reference, &mut rng, |_, _| true);
            let fragment = random_fragment(&labels, &mut rng, mix.max_fragment_size);
            UpdateOp::InsertBefore { target, fragment }
        } else {
            // Delete a random non-root element; if none exists fall back to insert.
            match try_random_node(&reference, &mut rng, |bin, n| {
                n != bin.root()
                    && matches!(bin.kind(n), NodeKind::Term(t) if !symbols.is_null(t))
            }) {
                Some(target) => UpdateOp::Delete { target },
                None => {
                    let target = random_node(&reference, &mut rng, |_, _| true);
                    let fragment = random_fragment(&labels, &mut rng, mix.max_fragment_size);
                    UpdateOp::InsertBefore { target, fragment }
                }
            }
        };
        apply_update(&mut reference, &mut symbols, &op)
            .expect("generated operations are valid by construction");
        ops.push(op);
    }
    ops
}

/// Generates `count` random rename operations to fresh labels (the Figure 6
/// workload), valid when applied in order starting from `xml`.
pub fn random_rename_sequence(xml: &XmlTree, count: usize, seed: u64) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut symbols = SymbolTable::new();
    let mut reference = to_binary(xml, &mut symbols).expect("valid document");
    let mut ops = Vec::with_capacity(count);
    for k in 0..count {
        let target = random_node(&reference, &mut rng, |bin, n| {
            matches!(bin.kind(n), NodeKind::Term(t) if !symbols.is_null(t))
        });
        let op = UpdateOp::Rename {
            target,
            label: format!("fresh_label_{k}"),
        };
        apply_update(&mut reference, &mut symbols, &op)
            .expect("generated operations are valid by construction");
        ops.push(op);
    }
    ops
}

fn try_random_node(
    bin: &RhsTree,
    rng: &mut StdRng,
    accept: impl Fn(&RhsTree, sltgrammar::NodeId) -> bool,
) -> Option<usize> {
    let pre = bin.preorder();
    let candidates: Vec<usize> = pre
        .iter()
        .enumerate()
        .filter(|(_, &n)| accept(bin, n))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.gen_range(0..candidates.len())])
}

fn random_node(
    bin: &RhsTree,
    rng: &mut StdRng,
    accept: impl Fn(&RhsTree, sltgrammar::NodeId) -> bool,
) -> usize {
    try_random_node(bin, rng, accept).expect("document always has at least one node")
}

/// Builds a small random element fragment using the document's own labels.
fn random_fragment(labels: &[String], rng: &mut StdRng, max_size: usize) -> XmlTree {
    let pick = |rng: &mut StdRng| labels[rng.gen_range(0..labels.len())].clone();
    let mut t = XmlTree::new(&pick(rng));
    let mut nodes: Vec<XmlNodeId> = vec![t.root()];
    let extra = rng.gen_range(0..max_size.max(1));
    for _ in 0..extra {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let child = t.add_child(parent, &pick(rng));
        nodes.push(child);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::binary::from_binary;

    fn doc() -> XmlTree {
        crate::regular::exi_weblog_like(30)
    }

    #[test]
    fn sequences_are_deterministic_and_have_the_right_mix() {
        let xml = doc();
        let a = random_insert_delete_sequence(&xml, 200, 11, WorkloadMix::default());
        let b = random_insert_delete_sequence(&xml, 200, 11, WorkloadMix::default());
        assert_eq!(a.len(), 200);
        let signature = |ops: &[UpdateOp]| {
            ops.iter()
                .map(|op| match op {
                    UpdateOp::InsertBefore { target, .. } => format!("i{target}"),
                    UpdateOp::Delete { target } => format!("d{target}"),
                    UpdateOp::Rename { target, .. } => format!("r{target}"),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(signature(&a), signature(&b));
        let inserts = a
            .iter()
            .filter(|op| matches!(op, UpdateOp::InsertBefore { .. }))
            .count();
        assert!(
            (150..=200).contains(&inserts),
            "expected roughly 90% inserts, got {inserts}/200"
        );
    }

    #[test]
    fn generated_sequences_apply_cleanly_to_the_reference_tree() {
        let xml = doc();
        let ops = random_insert_delete_sequence(&xml, 150, 3, WorkloadMix::default());
        let mut symbols = SymbolTable::new();
        let mut bin = to_binary(&xml, &mut symbols).unwrap();
        for op in &ops {
            apply_update(&mut bin, &mut symbols, op).unwrap();
        }
        // Still a well-formed document. (No assertion on net growth: deletes
        // remove whole subtrees, so the size balance of a particular sequence
        // is RNG-stream luck, not a property of the generator.)
        let back = from_binary(&bin, &symbols).unwrap();
        assert!(back.node_count() >= 1);
        let inserts = ops
            .iter()
            .filter(|op| matches!(op, UpdateOp::InsertBefore { .. }))
            .count();
        assert!(
            inserts > ops.len() / 2,
            "inserts must dominate the default 90% mix, got {inserts}/{}",
            ops.len()
        );
    }

    #[test]
    fn rename_sequences_only_touch_elements() {
        let xml = doc();
        let ops = random_rename_sequence(&xml, 50, 5);
        assert_eq!(ops.len(), 50);
        let mut symbols = SymbolTable::new();
        let mut bin = to_binary(&xml, &mut symbols).unwrap();
        for op in &ops {
            assert!(matches!(op, UpdateOp::Rename { .. }));
            apply_update(&mut bin, &mut symbols, op).unwrap();
        }
        // Renames to fresh labels never change the node count.
        assert_eq!(bin.node_count(), 2 * xml.node_count() + 1);
    }
}
