//! # datasets — the synthetic evaluation corpus
//!
//! Synthetic stand-ins for the six XMLCompBench documents used in the paper's
//! evaluation (see `DESIGN.md` for the substitution rationale), the `G_n`
//! grammar family of Section V-B, and the random update workloads of
//! Section V-C.
//!
//! All generators are deterministic given their seed, so every experiment in
//! the benchmark harness is reproducible.
//!
//! ## Example
//!
//! ```
//! use datasets::catalog::Dataset;
//! use datasets::workload::{random_insert_delete_sequence, WorkloadMix};
//!
//! let doc = Dataset::ExiWeblog.generate(0.05);
//! assert!(doc.edge_count() > 200);
//! let ops = random_insert_delete_sequence(&doc, 50, 42, WorkloadMix::default());
//! assert_eq!(ops.len(), 50);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod gn;
pub mod random;
pub mod regular;
pub mod workload;

pub use catalog::Dataset;
pub use workload::{random_insert_delete_sequence, random_rename_sequence, WorkloadMix};
