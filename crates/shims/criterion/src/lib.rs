//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the benches in
//! `bench-harness` link against this shim. It keeps the `criterion_group!` /
//! `criterion_main!` / `benchmark_group` / `bench_with_input` / `Bencher::iter`
//! surface, measures wall-clock time per iteration (median of the sampled
//! runs), prints one line per benchmark, and — when the `BENCH_JSON`
//! environment variable is set — writes all results to that path as a JSON
//! array so baselines can be committed (see `BENCH_compression.json`).

use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group (`function/parameter`).
    pub id: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }

    /// Prints the collected results and writes them to `$BENCH_JSON` if set.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            let mut out = String::from("[\n");
            for (i, r) in self.results.iter().enumerate() {
                let sep = if i + 1 == self.results.len() { "" } else { "," };
                out.push_str(&format!(
                    "  {{\"group\": \"{}\", \"id\": \"{}\", \"median_ns\": {:.0}, \"iterations\": {}}}{}\n",
                    r.group, r.id, r.median_ns, r.iterations, sep
                ));
            }
            out.push_str("]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut bencher, input);
        self.record(id.id, bencher);
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut bencher);
        self.record(id.id, bencher);
        self
    }

    /// Finishes the group (results are recorded eagerly; kept for API parity).
    pub fn finish(&mut self) {}

    fn record(&mut self, id: String, bencher: Bencher) {
        let median = bencher.median_ns();
        println!(
            "{}/{}: median {:.1} µs over {} iterations",
            self.name,
            id,
            median / 1e3,
            bencher.iterations
        );
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            id,
            median_ns: median,
            iterations: bencher.iterations,
        });
    }
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id made of a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing harness handed to benchmark closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns: Vec<f64>,
    iterations: u64,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration, warm_up_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            warm_up_time,
            samples_ns: Vec::new(),
            iterations: 0,
        }
    }

    /// Measures `routine`: warm-up, then `sample_size` timed samples spread
    /// over roughly `measurement_time`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also used to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        self.iterations = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
            self.iterations += iters_per_sample;
        }
    }

    fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if s.is_empty() {
            return 0.0;
        }
        s[s.len() / 2]
    }
}

/// Opaque value sink preventing the optimizer from deleting the benchmarked
/// computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($function(c);)+
        }
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.measurement_time(Duration::from_millis(30));
            group.warm_up_time(Duration::from_millis(5));
            group.bench_with_input(BenchmarkId::new("f", 1), &41u64, |b, &n| {
                b.iter(|| n + 1)
            });
            group.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].id, "f/1");
        assert!(c.results[0].iterations >= 3);
    }
}
