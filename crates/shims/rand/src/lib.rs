//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no crates.io access, so the corpus generators in
//! `datasets` link against this shim instead. It provides `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges and
//! `Rng::gen_bool`, all backed by a deterministic SplitMix64 generator:
//! given the same seed, generated corpora are identical across runs and
//! platforms, which is all the evaluation needs.

use std::ops::Range;

/// Low-level entropy source: the single required method of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from a half-open integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, as the real implementation does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Not the real `StdRng`
    /// algorithm, but statistically adequate for corpus generation and fully
    /// reproducible from the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..3u8);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!((8_700..=9_300).contains(&hits), "got {hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
