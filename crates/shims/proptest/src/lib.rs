//! Offline stand-in for the subset of the `proptest` crate this workspace uses.
//!
//! The build environment has no crates.io access, so the property tests link
//! against this shim. It implements randomized (not shrinking) property
//! testing with a deterministic RNG: a [`Strategy`] generates values, the
//! [`proptest!`] macro expands each property into a `#[test]` that runs the
//! body for `ProptestConfig::cases` generated inputs, and the `prop_assert*`
//! macros panic on failure (no shrinking — the failing case is reported by the
//! panic message and is reproducible because generation is deterministic).
//!
//! Supported surface: integer range strategies, `any::<T>()` for primitive
//! `T`, `prop::bool::ANY`, `prop::sample::select`, `prop::collection::vec`,
//! tuple strategies up to arity 4, `.prop_map`, simple character-class string
//! strategies like `"[a-z]{1,6}"`, `Just`, and `ProptestConfig::with_cases`.

use std::ops::Range;

/// Deterministic test RNG (SplitMix64, fixed base seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the fixed base seed used by every property test run.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for primitives.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Character-class string strategies: `"[a-z]{1,6}"` generates 1–6 chars drawn
/// from `a..=z`. Supported pattern shape: one bracket class of single chars
/// and/or ranges, followed by a `{min,max}` repetition (or a bare class,
/// meaning exactly one char).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, min, max))
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use crate::{Strategy, TestRng};

    /// Strategy for an unconstrained boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Any boolean, mirroring `proptest::bool::ANY`.
    pub const ANY: AnyBool = AnyBool;
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` values with a length
    /// in `size` (half-open, like the real crate's range form).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Sampling strategies, mirroring `proptest::sample`.
pub mod sample {
    use crate::{Strategy, TestRng};

    /// Strategy yielding clones of elements of a fixed vector.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// `proptest::sample::select`: pick one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// The `prop::` namespace of the prelude — an alias for the crate's strategy
/// modules, as in the real crate.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
}

/// Prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Expands each contained `fn name(pat in strategy, ...) { body }` into a test
/// running the body for `ProptestConfig::cases` deterministically generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_class_patterns_parse() {
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_values_in_range(x in 3usize..10, (b, v) in (prop::bool::ANY, prop::collection::vec(0u8..5, 1..4))) {
            prop_assert!((3..10).contains(&x));
            let _ = b;
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_map_compose(v in prop::collection::vec((prop::sample::select(vec!["a", "b"]), 0usize..8), 1..20).prop_map(|s| s.len())) {
            prop_assert!((1..20).contains(&v));
        }
    }
}
