//! Command implementations of the `sltxml` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; every subcommand is a pure
//! function from parsed arguments to a textual report, which keeps the whole
//! surface unit-testable without spawning processes.
//!
//! ```text
//! sltxml compress   <in.xml>  -o <out.sltg> [--compressor grammar|tree] [--no-prune]
//! sltxml decompress <in.sltg> -o <out.xml>
//! sltxml stats      <in.xml | in.sltg>
//! sltxml query      <in.xml | in.sltg> <path expression> [--positions]
//! sltxml update     <in.sltg> -o <out.sltg> [--rename idx=label]... [--delete idx]...
//!                   [--insert idx=<xml>]... [--recompress]
//! sltxml store      <in.xml | in.sltg>... [--rename idx=label]... [--delete idx]...
//!                   [--insert idx=<xml>]... [--query <path>] [--wal <dir>] [--queue]
//! sltxml store      checkpoint --wal <dir>
//! sltxml store      recover    --wal <dir>
//! sltxml serve      --wal <dir> (--tcp <addr> | --sock <path>)
//!                   [--max-pending <ops>] [--fail-fast] [--for <secs>]
//! sltxml client     (--tcp <addr> | --sock <path>) [<in.xml>...]
//!                   [--rename idx=label]... [--delete idx]... [--insert idx=<xml>]...
//!                   [--query <path>] [--to-xml] [--checkpoint] [--stats]
//! sltxml sizes      <in.xml>
//! sltxml generate   <dataset> [--scale f] -o <out.xml>
//! ```
//!
//! `serve` puts the wire-protocol server (`grammar_repair::server`) in
//! front of the durable store in `--wal <dir>`: writes route through the
//! ingestion queue's background drainer, so concurrent clients share
//! group-committed fsyncs. `client` drives a session against it over the
//! same socket kinds.
//!
//! With `--wal <dir>` the store becomes durable: documents are loaded
//! through a write-ahead log in `<dir>`, `store checkpoint` folds the log
//! into an atomic snapshot, and `store recover` replays whatever a crash
//! left behind and reports what it found — including how many documents the
//! paged checkpoint left lazily undecoded and how open time split between
//! checkpoint adoption and log replay.
//!
//! Update options given to `store` apply to every loaded document. With
//! `--queue` (requires `--wal`) they are routed through the ingestion queue:
//! each document's batch is submitted, a single drain coalesces all of them
//! into one group-committed WAL record, and the report shows the coalescing.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::sync::Arc;

use dag_xml::Dag;
use datasets::Dataset;
use grammar_repair::navigate::{element_count, label_counts};
use grammar_repair::query::PathQuery;
use grammar_repair::queue::{BackpressurePolicy, IngestQueue};
use grammar_repair::{
    update::{delete, insert_before, rename},
    Client, DomStore, DurableStore, GrammarRePair, GrammarRePairConfig, RecoveryReport, Server,
    ServerConfig,
};
use sltgrammar::{serialize, Grammar};
use succinct_xml::SuccinctDom;
use treerepair::TreeRePair;
use xmltree::binary::{from_binary, to_binary};
use xmltree::parse::parse_xml;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

/// Error type of the CLI: a message for the user plus a process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Message printed to stderr.
    pub message: String,
    /// Suggested process exit code.
    pub exit_code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: format!("{}\n\n{}", message.into(), USAGE),
            exit_code: 2,
        }
    }

    fn failure(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            exit_code: 1,
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
sltxml — grammar-compressed XML toolbox (ICDE 2016 reproduction)

USAGE:
  sltxml compress   <in.xml>  -o <out.sltg> [--compressor grammar|tree] [--no-prune]
  sltxml decompress <in.sltg> -o <out.xml>
  sltxml stats      <in.xml | in.sltg>
  sltxml query      <in.xml | in.sltg> <path> [--positions]
  sltxml update     <in.sltg> -o <out.sltg> [--rename idx=label]... [--delete idx]...
                    [--insert idx=<xml>]... [--recompress]
  sltxml store      <in.xml | in.sltg>... [--rename idx=label]... [--delete idx]...
                    [--insert idx=<xml>]... [--query <path>] [--wal <dir>] [--queue]
  sltxml store      checkpoint --wal <dir>
  sltxml store      recover    --wal <dir>
  sltxml serve      --wal <dir> (--tcp <addr> | --sock <path>)
                    [--max-pending <ops>] [--fail-fast] [--for <secs>]
  sltxml client     (--tcp <addr> | --sock <path>) [<in.xml>...]
                    [--rename idx=label]... [--delete idx]... [--insert idx=<xml>]...
                    [--query <path>] [--to-xml] [--checkpoint] [--stats]
  sltxml sizes      <in.xml>
  sltxml generate   <dataset> [--scale f] -o <out.xml>
      datasets: exi-weblog, xmark, exi-telecomp, treebank, medline, ncbi";

/// Entry point shared by the binary and the tests: dispatches on the first
/// argument and returns the report to print on stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::usage("missing subcommand"));
    };
    let rest = &args[1..];
    match command.as_str() {
        "compress" => cmd_compress(rest),
        "decompress" => cmd_decompress(rest),
        "stats" => cmd_stats(rest),
        "query" => cmd_query(rest),
        "update" => cmd_update(rest),
        "store" => cmd_store(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "sizes" => cmd_sizes(rest),
        "generate" => cmd_generate(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!("unknown subcommand `{other}`"))),
    }
}

// ----- argument helpers -----

struct Parsed {
    positionals: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

/// Options that take a value.
const VALUE_OPTIONS: &[&str] = &[
    "-o",
    "--output",
    "--compressor",
    "--scale",
    "--rename",
    "--delete",
    "--insert",
    "--query",
    "--wal",
    "--tcp",
    "--sock",
    "--for",
    "--max-pending",
];

fn parse_args(args: &[String]) -> Result<Parsed, CliError> {
    let mut parsed = Parsed {
        positionals: Vec::new(),
        options: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with('-') && arg.len() > 1 {
            if VALUE_OPTIONS.contains(&arg.as_str()) {
                let value = args.get(i + 1).cloned().ok_or_else(|| {
                    CliError::usage(format!("option `{arg}` requires a value"))
                })?;
                parsed.options.push((arg.clone(), Some(value)));
                i += 2;
            } else {
                parsed.options.push((arg.clone(), None));
                i += 1;
            }
        } else {
            parsed.positionals.push(arg.clone());
            i += 1;
        }
    }
    Ok(parsed)
}

impl Parsed {
    fn option(&self, names: &[&str]) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(n, _)| names.contains(&n.as_str()))
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag(&self, name: &str) -> bool {
        self.options.iter().any(|(n, _)| n == name)
    }

    fn option_all(&self, name: &str) -> Vec<&str> {
        self.options
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    fn output(&self) -> Result<&str, CliError> {
        self.option(&["-o", "--output"])
            .ok_or_else(|| CliError::usage("missing `-o <output file>`"))
    }
}

// ----- input loading -----

/// A loaded input: either a plain document or an already-compressed grammar.
enum Input {
    Xml(XmlTree),
    Grammar(Grammar),
}

fn load_input(path: &str) -> Result<Input, CliError> {
    let bytes = fs::read(path)
        .map_err(|e| CliError::failure(format!("cannot read `{path}`: {e}")))?;
    if bytes.starts_with(serialize::MAGIC) {
        let g = serialize::decode(&bytes)
            .map_err(|e| CliError::failure(format!("cannot decode `{path}`: {e}")))?;
        return Ok(Input::Grammar(g));
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| CliError::failure(format!("`{path}` is neither an SLTG file nor UTF-8 XML")))?;
    let xml = parse_xml(&text)
        .map_err(|e| CliError::failure(format!("cannot parse `{path}` as XML: {e}")))?;
    Ok(Input::Xml(xml))
}

fn load_grammar(path: &str) -> Result<Grammar, CliError> {
    match load_input(path)? {
        Input::Grammar(g) => Ok(g),
        Input::Xml(_) => Err(CliError::failure(format!(
            "`{path}` is an XML document; this command needs a compressed .sltg file"
        ))),
    }
}

fn to_grammar(input: Input) -> Grammar {
    match input {
        Input::Grammar(g) => g,
        Input::Xml(xml) => {
            let (g, _) = GrammarRePair::default().compress_xml(&xml);
            g
        }
    }
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)
                .map_err(|e| CliError::failure(format!("cannot create `{}`: {e}", parent.display())))?;
        }
    }
    fs::write(path, bytes).map_err(|e| CliError::failure(format!("cannot write `{path}`: {e}")))
}

// ----- subcommands -----

fn cmd_compress(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [input] = parsed.positionals.as_slice() else {
        return Err(CliError::usage("compress expects exactly one input file"));
    };
    let output = parsed.output()?;
    let Input::Xml(xml) = load_input(input)? else {
        return Err(CliError::failure(format!("`{input}` is already compressed")));
    };
    let config = GrammarRePairConfig {
        prune: !parsed.flag("--no-prune"),
        ..GrammarRePairConfig::default()
    };
    let compressor = parsed.option(&["--compressor"]).unwrap_or("grammar");
    let (grammar, label) = match compressor {
        "grammar" => {
            let (g, _) = GrammarRePair::new(config).compress_xml(&xml);
            (g, "GrammarRePair")
        }
        "tree" => {
            let (g, _) = TreeRePair::default().compress_xml(&xml);
            (g, "TreeRePair")
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown compressor `{other}` (expected `grammar` or `tree`)"
            )))
        }
    };
    let bytes = serialize::encode(&grammar);
    write_file(output, &bytes)?;
    let mut report = String::new();
    let input_edges = 2 * xml.node_count();
    writeln!(report, "compressor        {label}").unwrap();
    writeln!(report, "document edges    {}", xml.edge_count()).unwrap();
    writeln!(report, "binary tree edges {input_edges}").unwrap();
    writeln!(report, "grammar rules     {}", grammar.rule_count()).unwrap();
    writeln!(report, "grammar edges     {}", grammar.edge_count()).unwrap();
    writeln!(
        report,
        "compression ratio {:.2} %",
        100.0 * grammar.edge_count() as f64 / input_edges.max(1) as f64
    )
    .unwrap();
    writeln!(report, "output bytes      {}", bytes.len()).unwrap();
    writeln!(report, "wrote {output}").unwrap();
    Ok(report)
}

fn cmd_decompress(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [input] = parsed.positionals.as_slice() else {
        return Err(CliError::usage("decompress expects exactly one input file"));
    };
    let output = parsed.output()?;
    let grammar = load_grammar(input)?;
    let bin = sltgrammar::derive::val(&grammar)
        .map_err(|e| CliError::failure(format!("cannot materialize the document: {e}")))?;
    let xml = from_binary(&bin, &grammar.symbols)
        .map_err(|e| CliError::failure(format!("grammar does not encode a document: {e}")))?;
    write_file(output, xml.to_xml().as_bytes())?;
    Ok(format!(
        "decompressed {} grammar edges into {} elements\nwrote {output}\n",
        grammar.edge_count(),
        xml.node_count()
    ))
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [input] = parsed.positionals.as_slice() else {
        return Err(CliError::usage("stats expects exactly one input file"));
    };
    let mut report = String::new();
    match load_input(input)? {
        Input::Xml(xml) => {
            writeln!(report, "kind              XML document").unwrap();
            writeln!(report, "elements          {}", xml.node_count()).unwrap();
            writeln!(report, "edges             {}", xml.edge_count()).unwrap();
            writeln!(report, "depth             {}", xml.depth()).unwrap();
            writeln!(report, "distinct labels   {}", xml.labels().len()).unwrap();
        }
        Input::Grammar(g) => {
            writeln!(report, "kind              SLCF grammar").unwrap();
            report.push_str(&sltgrammar::stats::grammar_stats(&g).report());
            writeln!(report, "encoded bytes     {}", serialize::encoded_size(&g)).unwrap();
            writeln!(report, "document elements {}", element_count(&g)).unwrap();
            let mut labels: Vec<(String, u128)> = label_counts(&g)
                .into_iter()
                .filter(|(name, _)| name != sltgrammar::NULL_SYMBOL_NAME)
                .collect();
            labels.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            writeln!(report, "top labels:").unwrap();
            for (name, count) in labels.into_iter().take(10) {
                writeln!(report, "  {name:<20} {count}").unwrap();
            }
        }
    }
    Ok(report)
}

fn cmd_query(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [input, path] = parsed.positionals.as_slice() else {
        return Err(CliError::usage("query expects an input file and a path expression"));
    };
    let query = PathQuery::parse(path).map_err(|e| CliError::failure(e.to_string()))?;
    let grammar = to_grammar(load_input(input)?);
    let count = query.count(&grammar);
    let mut report = format!("query             {path}\nmatches           {count}\n");
    if parsed.flag("--positions") {
        let matches = query.evaluate(&grammar);
        for (pos, label) in matches.positions.iter().zip(matches.labels.iter()) {
            writeln!(report, "  element #{pos:<10} <{label}>").unwrap();
        }
    }
    Ok(report)
}

fn cmd_update(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [input] = parsed.positionals.as_slice() else {
        return Err(CliError::usage("update expects exactly one input file"));
    };
    let output = parsed.output()?;
    let mut grammar = load_grammar(input)?;
    let edges_before = grammar.edge_count();
    let mut ops = 0usize;

    for spec in parsed.option_all("--rename") {
        let (idx, label) = spec.split_once('=').ok_or_else(|| {
            CliError::usage(format!("--rename expects `index=label`, got `{spec}`"))
        })?;
        let idx: u128 = idx
            .parse()
            .map_err(|_| CliError::usage(format!("invalid index `{idx}`")))?;
        rename(&mut grammar, idx, label).map_err(|e| CliError::failure(e.to_string()))?;
        ops += 1;
    }
    for spec in parsed.option_all("--insert") {
        let (idx, fragment) = spec.split_once('=').ok_or_else(|| {
            CliError::usage(format!("--insert expects `index=<xml>`, got `{spec}`"))
        })?;
        let idx: u128 = idx
            .parse()
            .map_err(|_| CliError::usage(format!("invalid index `{idx}`")))?;
        let fragment = parse_xml(fragment)
            .map_err(|e| CliError::failure(format!("invalid fragment: {e}")))?;
        insert_before(&mut grammar, idx, &fragment).map_err(|e| CliError::failure(e.to_string()))?;
        ops += 1;
    }
    for spec in parsed.option_all("--delete") {
        let idx: u128 = spec
            .parse()
            .map_err(|_| CliError::usage(format!("invalid index `{spec}`")))?;
        delete(&mut grammar, idx).map_err(|e| CliError::failure(e.to_string()))?;
        ops += 1;
    }
    if ops == 0 {
        return Err(CliError::usage(
            "update needs at least one --rename, --insert or --delete",
        ));
    }
    let edges_updated = grammar.edge_count();
    let mut report = String::new();
    writeln!(report, "updates applied   {ops}").unwrap();
    writeln!(report, "edges before      {edges_before}").unwrap();
    writeln!(report, "edges after       {edges_updated}").unwrap();
    if parsed.flag("--recompress") {
        let stats = GrammarRePair::default().recompress(&mut grammar);
        writeln!(report, "recompressed to   {} edges", stats.output_edges).unwrap();
    }
    write_file(output, &serialize::encode(&grammar))?;
    writeln!(report, "wrote {output}").unwrap();
    Ok(report)
}

/// A store backing for `sltxml store`: plain in-memory, or write-ahead
/// logged into a `--wal` directory.
enum StoreBacking {
    Plain(DomStore),
    Durable(Arc<DurableStore>, RecoveryReport),
}

impl StoreBacking {
    fn dom(&self) -> &DomStore {
        match self {
            StoreBacking::Plain(s) => s,
            StoreBacking::Durable(s, _) => s.dom(),
        }
    }

    fn load(&self, input: Input) -> grammar_repair::Result<grammar_repair::DocId> {
        match (self, input) {
            (StoreBacking::Plain(s), Input::Xml(xml)) => s.load_xml(&xml),
            (StoreBacking::Plain(s), Input::Grammar(g)) => s.load_grammar(g),
            (StoreBacking::Durable(s, _), Input::Xml(xml)) => s.load_xml(&xml),
            (StoreBacking::Durable(s, _), Input::Grammar(g)) => s.load_grammar(g),
        }
    }
}

fn open_wal_dir(dir: &str) -> Result<(DurableStore, RecoveryReport), CliError> {
    DurableStore::open(dir)
        .map_err(|e| CliError::failure(format!("cannot open WAL directory `{dir}`: {e}")))
}

fn recovery_lines(report: &mut String, recovery: &RecoveryReport) {
    writeln!(report, "recovered to lsn   {}", recovery.last_lsn).unwrap();
    writeln!(
        report,
        "checkpoint         lsn {}, {} documents",
        recovery.checkpoint_lsn, recovery.checkpoint_docs
    )
    .unwrap();
    writeln!(
        report,
        "lazy documents     {} (decoded on first touch)",
        recovery.lazy_docs
    )
    .unwrap();
    writeln!(report, "records replayed   {}", recovery.replayed).unwrap();
    writeln!(
        report,
        "open time          {:?} (checkpoint {:?} + replay {:?})",
        recovery.open_elapsed, recovery.checkpoint_elapsed, recovery.replay_elapsed
    )
    .unwrap();
    if recovery.torn_tail {
        writeln!(
            report,
            "torn tail          truncated {} bytes of an unfinished record",
            recovery.truncated_bytes
        )
        .unwrap();
    } else {
        writeln!(report, "torn tail          none").unwrap();
    }
}

fn cmd_store_recover(parsed: &Parsed) -> Result<String, CliError> {
    let Some(dir) = parsed.option(&["--wal"]) else {
        return Err(CliError::usage("store recover needs `--wal <dir>`"));
    };
    let (store, recovery) = open_wal_dir(dir)?;
    let mut report = String::new();
    recovery_lines(&mut report, &recovery);
    writeln!(report, "documents          {}", store.len()).unwrap();
    for id in store.doc_ids() {
        let grammar = store
            .grammar(id)
            .map_err(|e| CliError::failure(e.to_string()))?;
        writeln!(
            report,
            "  doc #{:<4} {:>10} edges {:>12} elements",
            id.slot(),
            store.edge_count(id).map_err(|e| CliError::failure(e.to_string()))?,
            element_count(&grammar),
        )
        .unwrap();
    }
    Ok(report)
}

fn cmd_store_checkpoint(parsed: &Parsed) -> Result<String, CliError> {
    let Some(dir) = parsed.option(&["--wal"]) else {
        return Err(CliError::usage("store checkpoint needs `--wal <dir>`"));
    };
    let (store, recovery) = open_wal_dir(dir)?;
    let checkpoint = store
        .checkpoint()
        .map_err(|e| CliError::failure(format!("checkpoint failed: {e}")))?;
    let mut report = String::new();
    recovery_lines(&mut report, &recovery);
    writeln!(report, "{checkpoint}").unwrap();
    Ok(report)
}

/// Parse the `--rename/--insert/--delete` options of `sltxml store` into a
/// store-level batch, in the same order `sltxml update` applies them.
fn store_update_ops(parsed: &Parsed) -> Result<Vec<UpdateOp>, CliError> {
    let mut ops = Vec::new();
    for spec in parsed.option_all("--rename") {
        let (idx, label) = spec.split_once('=').ok_or_else(|| {
            CliError::usage(format!("--rename expects `index=label`, got `{spec}`"))
        })?;
        let target: usize = idx
            .parse()
            .map_err(|_| CliError::usage(format!("invalid index `{idx}`")))?;
        ops.push(UpdateOp::Rename {
            target,
            label: label.to_string(),
        });
    }
    for spec in parsed.option_all("--insert") {
        let (idx, fragment) = spec.split_once('=').ok_or_else(|| {
            CliError::usage(format!("--insert expects `index=<xml>`, got `{spec}`"))
        })?;
        let target: usize = idx
            .parse()
            .map_err(|_| CliError::usage(format!("invalid index `{idx}`")))?;
        let fragment = parse_xml(fragment)
            .map_err(|e| CliError::failure(format!("invalid fragment: {e}")))?;
        ops.push(UpdateOp::InsertBefore { target, fragment });
    }
    for spec in parsed.option_all("--delete") {
        let target: usize = spec
            .parse()
            .map_err(|_| CliError::usage(format!("invalid index `{spec}`")))?;
        ops.push(UpdateOp::Delete { target });
    }
    Ok(ops)
}

fn cmd_store(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    match parsed.positionals.first().map(String::as_str) {
        Some("recover") if parsed.positionals.len() == 1 => return cmd_store_recover(&parsed),
        Some("checkpoint") if parsed.positionals.len() == 1 => {
            return cmd_store_checkpoint(&parsed)
        }
        _ => {}
    }
    if parsed.positionals.is_empty() {
        return Err(CliError::usage("store expects at least one input file"));
    }
    if parsed.flag("--queue") && parsed.option(&["--wal"]).is_none() {
        return Err(CliError::usage(
            "--queue fronts the durable store and needs `--wal <dir>`",
        ));
    }
    let ops = store_update_ops(&parsed)?;
    let backing = match parsed.option(&["--wal"]) {
        Some(dir) => {
            let (store, recovery) = open_wal_dir(dir)?;
            StoreBacking::Durable(Arc::new(store), recovery)
        }
        None => StoreBacking::Plain(DomStore::new()),
    };
    let mut report = String::new();
    writeln!(
        report,
        "{:<6}{:<28}{:>10}{:>12}",
        "doc", "input", "edges", "elements"
    )
    .unwrap();
    let mut ids = Vec::new();
    for path in &parsed.positionals {
        let id = backing
            .load(load_input(path)?)
            .map_err(|e| CliError::failure(format!("cannot load `{path}`: {e}")))?;
        let store = backing.dom();
        let short = Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        writeln!(
            report,
            "#{:<5}{:<28}{:>10}{:>12}",
            id.slot(),
            short,
            store.edge_count(id).unwrap(),
            element_count(&store.grammar(id).unwrap()),
        )
        .unwrap();
        ids.push(id);
    }
    if !ops.is_empty() {
        writeln!(report).unwrap();
        if parsed.flag("--queue") {
            let StoreBacking::Durable(durable, _) = &backing else {
                unreachable!("--queue without --wal is rejected above");
            };
            let queue = IngestQueue::new(Arc::clone(durable));
            let tickets: Vec<_> = ids
                .iter()
                .map(|&id| {
                    queue
                        .submit(id, ops.clone())
                        .expect("unbounded queue accepts every submission")
                })
                .collect();
            let pending = queue.stats();
            writeln!(
                report,
                "queue pending      {} ops across {} batches, oldest {}",
                pending.pending_ops,
                tickets.len(),
                pending
                    .oldest_pending_age
                    .map(|age| format!("{age:.2?}"))
                    .unwrap_or_else(|| "-".to_string()),
            )
            .unwrap();
            let flush = queue.flush();
            for ticket in tickets {
                queue
                    .wait(ticket)
                    .map_err(|e| CliError::failure(format!("queued update failed: {e}")))?;
            }
            writeln!(
                report,
                "ingest queue       {} batches coalesced into {} jobs, one group commit",
                flush.batches, flush.jobs
            )
            .unwrap();
        } else {
            for &id in &ids {
                match &backing {
                    StoreBacking::Plain(s) => s.apply_batch(id, &ops),
                    StoreBacking::Durable(s, _) => s.apply_batch(id, &ops),
                }
                .map_err(|e| {
                    CliError::failure(format!("update failed on doc #{}: {e}", id.slot()))
                })?;
            }
        }
        writeln!(
            report,
            "updates            {} ops applied to each of {} documents",
            ops.len(),
            ids.len()
        )
        .unwrap();
    }
    let store = backing.dom();
    let stats = store.symbol_stats();
    writeln!(report).unwrap();
    writeln!(report, "documents          {}", store.len()).unwrap();
    writeln!(report, "shared alphabet    {} symbols", stats.master_symbols).unwrap();
    writeln!(
        report,
        "label tables       {} B resident ({} B shared once + {} B private)",
        stats.resident_bytes(),
        stats.shared_bytes,
        stats.private_bytes
    )
    .unwrap();
    writeln!(
        report,
        "per-document would be {} B ({:.2}x)",
        stats.unshared_bytes,
        stats.unshared_bytes as f64 / stats.resident_bytes().max(1) as f64
    )
    .unwrap();
    if let StoreBacking::Durable(durable, recovery) = &backing {
        writeln!(report).unwrap();
        recovery_lines(&mut report, recovery);
        writeln!(report, "durable lsn        {}", durable.durable_lsn()).unwrap();
    }
    if let Some(path) = parsed.option(&["--query"]) {
        let query = PathQuery::parse(path).map_err(|e| CliError::failure(e.to_string()))?;
        writeln!(report).unwrap();
        writeln!(report, "query {path} across the store:").unwrap();
        for &id in &ids {
            let count = store
                .query_count(id, &query)
                .map_err(|e| CliError::failure(e.to_string()))?;
            writeln!(report, "  doc #{:<4} {count} matches", id.slot()).unwrap();
        }
    }
    Ok(report)
}

/// `sltxml serve`: put a wire-protocol server in front of a durable store.
///
/// Runs until stdin reaches EOF (ctrl-D), or for `--for <secs>` when
/// given (scripting and tests). `--max-pending <ops>` arms the queue's
/// high-watermark; with `--fail-fast` overload is answered with
/// backpressure errors instead of blocking the connection.
fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    if !parsed.positionals.is_empty() {
        return Err(CliError::usage("serve takes no positional arguments"));
    }
    let Some(dir) = parsed.option(&["--wal"]) else {
        return Err(CliError::usage("serve needs `--wal <dir>`"));
    };
    let mut config = ServerConfig::default();
    if let Some(spec) = parsed.option(&["--max-pending"]) {
        let ops: usize = spec
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --max-pending `{spec}`")))?;
        config.queue.high_watermark_ops = Some(ops);
    }
    if parsed.flag("--fail-fast") {
        config.queue.backpressure = BackpressurePolicy::Fail;
    }
    let (store, recovery) = open_wal_dir(dir)?;
    let store = Arc::new(store);
    let server = match (parsed.option(&["--tcp"]), parsed.option(&["--sock"])) {
        (Some(addr), None) => {
            let server = Server::serve_tcp(store, addr, config)
                .map_err(|e| CliError::failure(format!("cannot listen on tcp `{addr}`: {e}")))?;
            let bound = server
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|| addr.to_string());
            println!("listening on tcp {bound}");
            server
        }
        #[cfg(unix)]
        (None, Some(path)) => {
            let server = Server::serve_unix(store, Path::new(path), config).map_err(|e| {
                CliError::failure(format!("cannot listen on unix socket `{path}`: {e}"))
            })?;
            println!("listening on unix socket {path}");
            server
        }
        #[cfg(not(unix))]
        (None, Some(_)) => {
            return Err(CliError::failure(
                "unix sockets are not available on this platform",
            ));
        }
        _ => {
            return Err(CliError::usage(
                "serve needs exactly one of `--tcp <addr>` or `--sock <path>`",
            ));
        }
    };
    if let Some(spec) = parsed.option(&["--for"]) {
        let secs: f64 = spec
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --for `{spec}`")))?;
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
    } else {
        println!("reading stdin; EOF (ctrl-D) shuts the server down");
        let mut sink = [0u8; 4096];
        let mut stdin = std::io::stdin().lock();
        loop {
            match std::io::Read::read(&mut stdin, &mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
    let stats = server.stats();
    drop(server); // shutdown: join handlers, final queue drain
    let mut report = String::new();
    recovery_lines(&mut report, &recovery);
    writeln!(
        report,
        "served             {} connections, {} requests ({} protocol errors)",
        stats.connections, stats.requests, stats.protocol_errors
    )
    .unwrap();
    Ok(report)
}

fn client_connect(parsed: &Parsed) -> Result<Client, CliError> {
    match (parsed.option(&["--tcp"]), parsed.option(&["--sock"])) {
        (Some(addr), None) => Ok(Client::connect_tcp(addr)),
        #[cfg(unix)]
        (None, Some(path)) => Ok(Client::connect_unix(path)),
        #[cfg(not(unix))]
        (None, Some(_)) => Err(CliError::failure(
            "unix sockets are not available on this platform",
        )),
        _ => Err(CliError::usage(
            "client needs exactly one of `--tcp <addr>` or `--sock <path>`",
        )),
    }
}

/// `sltxml client`: a session against a running `sltxml serve`. Loads each
/// XML input, applies the update options to every loaded document (each
/// `applied` line is a durable, group-committed write by the time it
/// prints), then runs the optional query/serialize/checkpoint/stats steps.
fn cmd_client(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    if parsed.positionals.is_empty() && !parsed.flag("--stats") && !parsed.flag("--checkpoint") {
        return Err(CliError::usage(
            "client expects XML inputs and/or `--stats` / `--checkpoint`",
        ));
    }
    let client = client_connect(&parsed)?;
    let ops = store_update_ops(&parsed)?;
    let mut report = String::new();
    let mut ids = Vec::new();
    for path in &parsed.positionals {
        let Input::Xml(xml) = load_input(path)? else {
            return Err(CliError::failure(format!(
                "`{path}` is already compressed; the wire client sends plain XML"
            )));
        };
        let id = client
            .load_xml(&xml)
            .map_err(|e| CliError::failure(format!("load of `{path}` failed: {e}")))?;
        let short = Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        writeln!(report, "loaded  {short:<28} doc #{}", id.slot()).unwrap();
        ids.push(id);
    }
    if !ops.is_empty() {
        for &id in &ids {
            let stats = client.apply_batch(id, ops.clone()).map_err(|e| {
                CliError::failure(format!("update failed on doc #{}: {e}", id.slot()))
            })?;
            writeln!(
                report,
                "applied doc #{:<4} {} ops, {} -> {} edges (durable on ack)",
                id.slot(),
                stats.ops,
                stats.edges_before,
                stats.edges_after
            )
            .unwrap();
        }
    }
    if let Some(path) = parsed.option(&["--query"]) {
        for &id in &ids {
            let matches = client
                .query(id, path)
                .map_err(|e| CliError::failure(e.to_string()))?;
            writeln!(
                report,
                "query   doc #{:<4} {} matches for {path}",
                id.slot(),
                matches.len()
            )
            .unwrap();
        }
    }
    if parsed.flag("--to-xml") {
        for &id in &ids {
            let xml = client
                .to_xml(id)
                .map_err(|e| CliError::failure(e.to_string()))?;
            writeln!(report, "{xml}").unwrap();
        }
    }
    if parsed.flag("--checkpoint") {
        let cp = client
            .checkpoint()
            .map_err(|e| CliError::failure(format!("checkpoint failed: {e}")))?;
        writeln!(
            report,
            "checkpoint         lsn {} | {} documents | {} B{}",
            cp.last_lsn,
            cp.documents,
            cp.bytes,
            if cp.log_truncated { " | log truncated" } else { "" }
        )
        .unwrap();
    }
    if parsed.flag("--stats") {
        let s = client
            .stats()
            .map_err(|e| CliError::failure(format!("stats failed: {e}")))?;
        writeln!(
            report,
            "server             {} documents | durable lsn {} | {} wal syncs",
            s.documents, s.durable_lsn, s.wal_syncs
        )
        .unwrap();
        writeln!(
            report,
            "queue              {} submitted | {} flushes | {} coalesced jobs | {} ops pending",
            s.submitted, s.flushes, s.coalesced_jobs, s.pending_ops
        )
        .unwrap();
        writeln!(
            report,
            "connections        {} total | {} requests served",
            s.connections, s.requests
        )
        .unwrap();
    }
    Ok(report)
}

fn cmd_sizes(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [input] = parsed.positionals.as_slice() else {
        return Err(CliError::usage("sizes expects exactly one XML input file"));
    };
    let Input::Xml(xml) = load_input(input)? else {
        return Err(CliError::failure("sizes expects an uncompressed XML document"));
    };
    let n = xml.node_count();

    // Pointer DOM estimate: label pointer + parent + child vector per node.
    let pointer_bytes: usize = xml
        .preorder()
        .iter()
        .map(|&v| 8 + 24 + xml.children(v).len() * 4 + xml.label(v).len())
        .sum();

    let succinct = SuccinctDom::build(&xml);

    let mut symbols = sltgrammar::SymbolTable::new();
    let bin = to_binary(&xml, &mut symbols)
        .map_err(|e| CliError::failure(format!("binary encoding failed: {e}")))?;
    let dag = Dag::build(&bin, &symbols);

    let (tree_grammar, _) = TreeRePair::default().compress_binary(symbols.clone(), bin.clone());
    let (mut grammar, _) = GrammarRePair::default().compress_xml(&xml);
    grammar.compact();

    let mut report = String::new();
    writeln!(report, "document: {n} elements, {} edges", xml.edge_count()).unwrap();
    writeln!(report, "{:<28}{:>14}{:>12}", "representation", "size", "per node").unwrap();
    let mut row = |name: &str, bytes: usize| {
        writeln!(
            report,
            "{:<28}{:>12} B{:>10.2} B",
            name,
            bytes,
            bytes as f64 / n as f64
        )
        .unwrap();
    };
    row("pointer DOM (estimate)", pointer_bytes);
    row("succinct DOM (BP + labels)", succinct.size_bytes());
    row("minimal DAG", dag.size_bytes());
    row("TreeRePair grammar (.sltg)", serialize::encoded_size(&tree_grammar));
    row("GrammarRePair grammar (.sltg)", serialize::encoded_size(&grammar));
    writeln!(report).unwrap();
    writeln!(report, "{:<28}{:>14}", "representation", "edges").unwrap();
    let mut row = |name: &str, edges: usize| {
        writeln!(report, "{:<28}{:>14}", name, edges).unwrap();
    };
    row("binary tree", 2 * n);
    row("minimal DAG", dag.edge_count());
    row("TreeRePair grammar", tree_grammar.edge_count());
    row("GrammarRePair grammar", grammar.edge_count());
    Ok(report)
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [name] = parsed.positionals.as_slice() else {
        return Err(CliError::usage("generate expects exactly one dataset name"));
    };
    let output = parsed.output()?;
    let scale: f64 = parsed
        .option(&["--scale"])
        .unwrap_or("0.2")
        .parse()
        .map_err(|_| CliError::usage("--scale expects a number"))?;
    if scale <= 0.0 || scale > 100.0 || scale.is_nan() {
        return Err(CliError::usage("--scale must be in (0, 100]"));
    }
    let dataset = match name.to_lowercase().as_str() {
        "exi-weblog" | "weblog" | "ew" => Dataset::ExiWeblog,
        "xmark" | "xm" => Dataset::XMark,
        "exi-telecomp" | "telecomp" | "et" => Dataset::ExiTelecomp,
        "treebank" | "tb" => Dataset::Treebank,
        "medline" | "md" => Dataset::Medline,
        "ncbi" | "nc" => Dataset::Ncbi,
        other => return Err(CliError::usage(format!("unknown dataset `{other}`"))),
    };
    let xml = dataset.generate(scale);
    write_file(output, xml.to_xml().as_bytes())?;
    Ok(format!(
        "generated {} ({} elements, depth {})\nwrote {output}\n",
        dataset.name(),
        xml.node_count(),
        xml.depth()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("sltxml-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    const DOC: &str = "<catalog><item><name/><price/></item><item><name/><price/></item>\
                       <item><name/><price/></item><item><name/><price/></item></catalog>";

    fn write_doc(name: &str) -> String {
        let path = temp_path(name);
        fs::write(&path, DOC).unwrap();
        path
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&args(&["help"])).unwrap().contains("USAGE"));
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("unknown subcommand"));
        assert!(run(&[]).is_err());
    }

    #[test]
    fn compress_stats_decompress_roundtrip() {
        let input = write_doc("roundtrip.xml");
        let compressed = temp_path("roundtrip.sltg");
        let restored = temp_path("restored.xml");

        let report = run(&args(&["compress", &input, "-o", &compressed])).unwrap();
        assert!(report.contains("GrammarRePair"));
        assert!(report.contains("grammar edges"));

        let report = run(&args(&["stats", &compressed])).unwrap();
        assert!(report.contains("SLCF grammar"));
        assert!(report.contains("document elements 13"));

        let report = run(&args(&["decompress", &compressed, "-o", &restored])).unwrap();
        assert!(report.contains("13 elements"));
        let text = fs::read_to_string(&restored).unwrap();
        assert_eq!(text, DOC.replace("  ", "").replace('\n', ""));
    }

    #[test]
    fn compress_with_treerepair_backend() {
        let input = write_doc("tree-backend.xml");
        let compressed = temp_path("tree-backend.sltg");
        let report = run(&args(&[
            "compress",
            &input,
            "-o",
            &compressed,
            "--compressor",
            "tree",
        ]))
        .unwrap();
        assert!(report.contains("TreeRePair"));
        let err = run(&args(&[
            "compress",
            &input,
            "-o",
            &compressed,
            "--compressor",
            "zip",
        ]))
        .unwrap_err();
        assert!(err.message.contains("unknown compressor"));
    }

    #[test]
    fn stats_on_plain_xml() {
        let input = write_doc("stats.xml");
        let report = run(&args(&["stats", &input])).unwrap();
        assert!(report.contains("XML document"));
        assert!(report.contains("elements          13"));
    }

    #[test]
    fn query_counts_and_positions() {
        let input = write_doc("query.xml");
        let report = run(&args(&["query", &input, "//item/name"])).unwrap();
        assert!(report.contains("matches           4"));
        let report = run(&args(&["query", &input, "//price", "--positions"])).unwrap();
        assert!(report.contains("matches           4"));
        assert!(report.contains("<price>"));
        let err = run(&args(&["query", &input, "not-a-path"])).unwrap_err();
        assert!(err.message.contains("absolute"));
    }

    #[test]
    fn update_then_query_sees_the_change() {
        let input = write_doc("update.xml");
        let compressed = temp_path("update.sltg");
        let updated = temp_path("updated.sltg");
        run(&args(&["compress", &input, "-o", &compressed])).unwrap();

        // Element at binary preorder index 1 is the first <item>.
        let report = run(&args(&[
            "update",
            &compressed,
            "-o",
            &updated,
            "--rename",
            "1=offer",
            "--recompress",
        ]))
        .unwrap();
        assert!(report.contains("updates applied   1"));
        assert!(report.contains("recompressed"));

        let report = run(&args(&["query", &updated, "//offer"])).unwrap();
        assert!(report.contains("matches           1"));
        let report = run(&args(&["query", &updated, "//item"])).unwrap();
        assert!(report.contains("matches           3"));

        // No-op update is rejected.
        let err = run(&args(&["update", &updated, "-o", &updated])).unwrap_err();
        assert!(err.message.contains("at least one"));
    }

    #[test]
    fn store_loads_many_documents_and_reports_sharing() {
        let a = write_doc("store-a.xml");
        let b_path = temp_path("store-b.xml");
        fs::write(
            &b_path,
            "<catalog><item><name/><price/></item><extra/></catalog>",
        )
        .unwrap();
        let c_compressed = temp_path("store-c.sltg");
        run(&args(&["compress", &a, "-o", &c_compressed])).unwrap();

        let report = run(&args(&[
            "store",
            &a,
            &b_path,
            &c_compressed,
            "--query",
            "//item/name",
        ]))
        .unwrap();
        assert!(report.contains("documents          3"), "{report}");
        assert!(report.contains("shared alphabet"), "{report}");
        assert!(report.contains("doc #0    4 matches"), "{report}");
        assert!(report.contains("doc #1    1 matches"), "{report}");
        assert!(report.contains("doc #2    4 matches"), "{report}");
        // Sharing must beat per-document tables on this similar corpus.
        let factor: f64 = report
            .lines()
            .find(|l| l.contains("per-document would be"))
            .and_then(|l| l.split('(').nth(1))
            .and_then(|s| s.trim_end_matches(['x', ')']).parse().ok())
            .expect("factor line present");
        assert!(factor > 1.0, "expected sharing to win, got {factor}x in\n{report}");

        let err = run(&args(&["store"])).unwrap_err();
        assert!(err.message.contains("at least one"));
    }

    #[test]
    fn store_with_wal_loads_checkpoints_and_recovers() {
        let a = write_doc("wal-a.xml");
        let b_path = temp_path("wal-b.xml");
        fs::write(
            &b_path,
            "<catalog><item><name/><price/></item><extra/></catalog>",
        )
        .unwrap();
        let dir = temp_path("wal-dir");
        let _ = fs::remove_dir_all(&dir);

        // Load two documents through the log.
        let report = run(&args(&["store", &a, &b_path, "--wal", &dir])).unwrap();
        assert!(report.contains("documents          2"), "{report}");
        assert!(report.contains("durable lsn        2"), "{report}");
        assert!(report.contains("torn tail          none"), "{report}");
        assert!(report.contains("open time          "), "{report}");

        // A fresh process recovers both documents purely from the log.
        let report = run(&args(&["store", "recover", "--wal", &dir])).unwrap();
        assert!(report.contains("records replayed   2"), "{report}");
        assert!(report.contains("documents          2"), "{report}");

        // Checkpoint folds the log into a snapshot...
        let report = run(&args(&["store", "checkpoint", "--wal", &dir])).unwrap();
        assert!(report.contains("checkpoint at lsn 2: 2 docs"), "{report}");

        // ...after which recovery replays nothing and the paged checkpoint
        // leaves both documents undecoded until the report touches them.
        let report = run(&args(&["store", "recover", "--wal", &dir])).unwrap();
        assert!(report.contains("records replayed   0"), "{report}");
        assert!(report.contains("checkpoint         lsn 2, 2 documents"), "{report}");
        assert!(
            report.contains("lazy documents     2 (decoded on first touch)"),
            "{report}"
        );

        // A torn tail (half a record appended by a crashed writer) is
        // truncated and reported, not an error.
        let log = format!("{dir}/wal.log");
        let mut bytes = fs::read(&log).unwrap();
        bytes.extend_from_slice(&[42, 0, 0, 0, 1, 2, 3]); // length says 42, 3 payload bytes present
        fs::write(&log, &bytes).unwrap();
        let report = run(&args(&["store", "recover", "--wal", &dir])).unwrap();
        assert!(report.contains("torn tail          truncated 7 bytes"), "{report}");

        let err = run(&args(&["store", "recover"])).unwrap_err();
        assert!(err.message.contains("--wal"));
        let err = run(&args(&["store", "checkpoint"])).unwrap_err();
        assert!(err.message.contains("--wal"));
    }

    #[test]
    fn store_queue_coalesces_updates_into_one_record() {
        let a = write_doc("queue-a.xml");
        let b_path = write_doc("queue-b.xml");
        let dir = temp_path("queue-dir");
        let _ = fs::remove_dir_all(&dir);

        // The queue fronts the durable store only.
        let err = run(&args(&["store", &a, "--queue"])).unwrap_err();
        assert!(err.message.contains("--wal"), "{}", err.message);

        // Rename the first <item> of both documents through the queue: two
        // submitted batches drain as one coalesced group commit, and the
        // query afterwards sees the change.
        let report = run(&args(&[
            "store", &a, &b_path, "--wal", &dir, "--queue", "--rename", "1=offer", "--query",
            "//offer",
        ]))
        .unwrap();
        assert!(
            report.contains("ingest queue       2 batches coalesced into 2 jobs"),
            "{report}"
        );
        assert!(
            report.contains("queue pending      2 ops across 2 batches, oldest "),
            "{report}"
        );
        assert!(
            report.contains("updates            1 ops applied to each of 2 documents"),
            "{report}"
        );
        assert!(report.contains("doc #0    1 matches"), "{report}");
        assert!(report.contains("doc #1    1 matches"), "{report}");

        // The whole run logged three records: two loads plus ONE coalesced
        // ApplyMany for both renames — and a fresh recovery replays them.
        let report = run(&args(&["store", "recover", "--wal", &dir])).unwrap();
        assert!(report.contains("records replayed   3"), "{report}");

        // The direct (unqueued) path logs one record per document instead.
        let dir = temp_path("queue-direct-dir");
        let _ = fs::remove_dir_all(&dir);
        let report = run(&args(&[
            "store", &a, &b_path, "--wal", &dir, "--rename", "1=offer",
        ]))
        .unwrap();
        assert!(
            report.contains("updates            1 ops applied to each of 2 documents"),
            "{report}"
        );
        let report = run(&args(&["store", "recover", "--wal", &dir])).unwrap();
        assert!(report.contains("records replayed   4"), "{report}");
    }

    #[cfg(unix)]
    #[test]
    fn serve_and_client_roundtrip_over_a_unix_socket() {
        let a = write_doc("serve-a.xml");
        let dir = temp_path("serve-dir");
        let _ = fs::remove_dir_all(&dir);
        let sock = temp_path("serve.sock");
        let _ = fs::remove_file(&sock);

        let serve_args = args(&["serve", "--wal", &dir, "--sock", &sock, "--for", "1.5"]);
        let server = std::thread::spawn(move || run(&serve_args));
        for _ in 0..100 {
            if Path::new(&sock).exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }

        let report = run(&args(&[
            "client",
            "--sock",
            &sock,
            &a,
            "--rename",
            "1=offer",
            "--query",
            "//offer",
            "--checkpoint",
            "--stats",
        ]))
        .unwrap();
        assert!(report.contains("loaded"), "{report}");
        assert!(report.contains("applied doc #0"), "{report}");
        assert!(report.contains("1 matches for //offer"), "{report}");
        assert!(report.contains("checkpoint         lsn"), "{report}");
        assert!(report.contains("server             1 documents"), "{report}");

        let report = server.join().unwrap().unwrap();
        assert!(report.contains("1 connections"), "{report}");

        // The served session is durable: a fresh recovery sees the state.
        let report = run(&args(&["store", "recover", "--wal", &dir])).unwrap();
        assert!(report.contains("documents          1"), "{report}");

        // Endpoint validation.
        let err = run(&args(&["client", "--stats"])).unwrap_err();
        assert!(err.message.contains("exactly one of"), "{}", err.message);
        let err = run(&args(&["serve", "--sock", &sock])).unwrap_err();
        assert!(err.message.contains("--wal"), "{}", err.message);
    }

    #[test]
    fn sizes_lists_all_representations() {
        let input = write_doc("sizes.xml");
        let report = run(&args(&["sizes", &input])).unwrap();
        for needle in [
            "pointer DOM",
            "succinct DOM",
            "minimal DAG",
            "TreeRePair grammar",
            "GrammarRePair grammar",
        ] {
            assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
        }
    }

    #[test]
    fn generate_produces_parseable_datasets() {
        let out = temp_path("generated.xml");
        let report = run(&args(&["generate", "xmark", "--scale", "0.05", "-o", &out])).unwrap();
        assert!(report.contains("XMark"));
        let text = fs::read_to_string(&out).unwrap();
        assert!(parse_xml(&text).is_ok());
        let err = run(&args(&["generate", "unknown", "-o", &out])).unwrap_err();
        assert!(err.message.contains("unknown dataset"));
    }

    #[test]
    fn missing_files_and_outputs_are_reported() {
        let err = run(&args(&["stats", "/nonexistent/file.xml"])).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("cannot read"));
        let input = write_doc("no-output.xml");
        let err = run(&args(&["compress", &input])).unwrap_err();
        assert!(err.message.contains("-o"));
    }
}
