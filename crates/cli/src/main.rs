//! `sltxml` — command-line front end for the grammar-compressed XML toolbox.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sltxml_cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(err) => {
            eprintln!("{}", err.message);
            std::process::exit(err.exit_code);
        }
    }
}
