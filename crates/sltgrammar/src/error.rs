//! Error types for the SLCF grammar substrate.

use std::fmt;

/// Errors produced by grammar construction, validation, parsing and derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// A symbol was interned twice with two different ranks.
    RankMismatch {
        /// Symbol name.
        name: String,
        /// Rank recorded first.
        expected: usize,
        /// Conflicting rank.
        found: usize,
    },
    /// A node has a number of children that does not match the rank of its label.
    ArityMismatch {
        /// Human readable description of the offending node.
        node: String,
        /// Rank of the label.
        expected: usize,
        /// Number of children found.
        found: usize,
    },
    /// A rule right-hand side does not use the parameters `y1..yk` exactly once each.
    BadParameters {
        /// Name of the rule.
        rule: String,
        /// Description of the problem.
        detail: String,
    },
    /// The grammar is recursive, i.e. not straight-line.
    NotStraightLine {
        /// Name of a nonterminal on a cycle.
        nonterminal: String,
    },
    /// A nonterminal is referenced but has no rule.
    MissingRule {
        /// Name (or id) of the missing nonterminal.
        nonterminal: String,
    },
    /// The start rule must have rank 0 and must not be referenced by any rule.
    BadStartRule {
        /// Description of the violation.
        detail: String,
    },
    /// A right-hand side consists of a single parameter node, which the model forbids.
    SingleParameterRhs {
        /// Name of the rule.
        rule: String,
    },
    /// Parse error in the textual grammar format.
    Parse {
        /// Line number (1-based) where the error occurred, 0 if unknown.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// Materializing `val(G)` would exceed the configured node limit.
    DerivationTooLarge {
        /// The configured limit.
        limit: u64,
    },
    /// The binary serialization could not be decoded.
    Decode {
        /// Byte offset at which decoding failed, if known.
        offset: usize,
        /// Description of the problem.
        detail: String,
    },
    /// The binary serialization's CRC-32 does not match its payload: the
    /// bytes were corrupted in storage or transit (distinct from [`Decode`]
    /// so callers can tell bit rot from a malformed or foreign file).
    ///
    /// [`Decode`]: GrammarError::Decode
    Checksum {
        /// Checksum recorded in the frame header.
        expected: u32,
        /// Checksum computed over the payload actually present.
        found: u32,
    },
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::RankMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "symbol `{name}` interned with rank {found}, but was previously rank {expected}"
            ),
            GrammarError::ArityMismatch {
                node,
                expected,
                found,
            } => write!(
                f,
                "node {node} has {found} children but its label has rank {expected}"
            ),
            GrammarError::BadParameters { rule, detail } => {
                write!(f, "rule `{rule}` has invalid parameters: {detail}")
            }
            GrammarError::NotStraightLine { nonterminal } => {
                write!(f, "grammar is recursive: nonterminal `{nonterminal}` reaches itself")
            }
            GrammarError::MissingRule { nonterminal } => {
                write!(f, "nonterminal `{nonterminal}` is referenced but has no rule")
            }
            GrammarError::BadStartRule { detail } => write!(f, "invalid start rule: {detail}"),
            GrammarError::SingleParameterRhs { rule } => write!(
                f,
                "rule `{rule}` consists of a single parameter node, which is not allowed"
            ),
            GrammarError::Parse { line, detail } => {
                write!(f, "grammar parse error at line {line}: {detail}")
            }
            GrammarError::DerivationTooLarge { limit } => write!(
                f,
                "materializing the derived tree would exceed the limit of {limit} nodes"
            ),
            GrammarError::Decode { offset, detail } => {
                write!(f, "binary grammar decode error at byte {offset}: {detail}")
            }
            GrammarError::Checksum { expected, found } => write!(
                f,
                "checksum mismatch: frame header says {expected:#010x}, payload hashes to {found:#010x}"
            ),
        }
    }
}

impl std::error::Error for GrammarError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GrammarError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_information() {
        let e = GrammarError::RankMismatch {
            name: "a".into(),
            expected: 2,
            found: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('a') && msg.contains('2') && msg.contains('3'));

        let e = GrammarError::NotStraightLine {
            nonterminal: "A".into(),
        };
        assert!(e.to_string().contains("recursive"));

        let e = GrammarError::Parse {
            line: 7,
            detail: "unexpected token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        let e = GrammarError::MissingRule {
            nonterminal: "B".into(),
        };
        assert_err(&e);
    }
}
