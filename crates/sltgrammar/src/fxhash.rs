//! An inlined Fx-style hasher for the compression hot path.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! HashDoS-resistant, but its per-write cost dominates the profile of the
//! small fixed-size keys this workspace hashes millions of times per
//! compression run: digrams, node ids and nonterminal ids. Profiling on the
//! heterogeneous corpus attributed roughly 30 % of the queue-path time to
//! SipHash in `OccTable`, the queue exclusion set and the splice id mappings.
//!
//! [`FxHasher`] is the classic multiply-xor-rotate hash used by rustc
//! (`rustc-hash`): each word is folded into the state with one rotate, one
//! xor and one multiplication by a 64-bit constant derived from the golden
//! ratio. It is not DoS-resistant — all keys hashed here are internal ids,
//! never attacker-controlled strings — and it is dramatically cheaper for
//! word-sized keys because the `write_*` fast paths compile to three ALU
//! instructions.
//!
//! Determinism note: swapping hashers changes `HashMap` iteration order.
//! Every map switched to [`FxHashMap`] is either never iterated for output
//! or feeds an order-insensitive aggregation (max with total tie-break,
//! ordered bucket queue, `BTreeMap` sink); the selector-equivalence suites
//! pin this down.

use std::hash::{BuildHasher, Hasher};

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Multiplier: 2^64 / φ, forced odd (the constant used by rustc's Fx hash).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Stateless [`BuildHasher`] producing [`FxHasher`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// The hasher state: one 64-bit word folded per write.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_ne_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.add(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.add(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.add(v as usize as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher.hash_one(value)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&(1u32, 2usize)), hash_of(&(1u32, 2usize)));
    }

    #[test]
    fn different_values_hash_differently() {
        // Not a cryptographic property, but these must not trivially collide.
        let hashes: Vec<u64> = (0u32..1000).map(|i| hash_of(&i)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "trivial collisions on small ints");
    }

    #[test]
    fn byte_writes_match_word_writes_for_padded_tails() {
        // write() folds the tail zero-padded; a direct u64 write of the same
        // padded word must agree, so mixed Hash impls stay consistent.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_ne_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn maps_and_sets_behave_normally() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&40), Some(&80));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }
}
