//! Savings-based pruning of unproductive rules (paper Section IV-D).
//!
//! A rule `R → t_R` is *unproductive* if keeping it does not pay for itself:
//! `sav_G(R) = |ref_G(R)| · (size(t_R) − rank(R)) − size(t_R) < 0`,
//! where `size(t)` is the number of edges of `t`. Unproductive rules are removed
//! by inlining them at every reference. Following TreeRePair's greedy strategy,
//! rules referenced at most once are removed first, then the remaining rules are
//! examined in anti-straight-line order (callees first), recomputing savings as
//! inlining changes rule sizes.

use crate::grammar::Grammar;
use crate::symbol::NtId;

/// Statistics of one pruning pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Rules removed because they were referenced at most once.
    pub removed_single_ref: usize,
    /// Rules removed because their savings value was negative.
    pub removed_unproductive: usize,
    /// Rules removed because they became unreachable.
    pub removed_unreachable: usize,
}

impl PruneStats {
    /// Total number of removed rules.
    pub fn total(&self) -> usize {
        self.removed_single_ref + self.removed_unproductive + self.removed_unreachable
    }
}

/// The savings value `sav_G(R)` of the paper, using edge counts as sizes.
pub fn savings(g: &Grammar, nt: NtId) -> i64 {
    let refs = g.ref_counts();
    savings_with(g, nt, refs.get(&nt).copied().unwrap_or(0))
}

fn savings_with(g: &Grammar, nt: NtId, ref_count: usize) -> i64 {
    let rule = g.rule(nt);
    let size = rule.rhs.edge_count() as i64;
    let rank = rule.rank as i64;
    (ref_count as i64) * (size - rank) - size
}

/// Removes unproductive rules from the grammar. The derived tree is unchanged.
pub fn prune(g: &mut Grammar) -> PruneStats {
    let mut stats = PruneStats::default();
    stats.removed_unreachable += g.gc();

    // Phase 1: rules with a single reference never pay for themselves.
    loop {
        let refs = g.ref_counts();
        let mut candidate = None;
        for nt in g.nonterminals() {
            if nt == g.start() {
                continue;
            }
            if refs.get(&nt).copied().unwrap_or(0) <= 1 {
                candidate = Some(nt);
                break;
            }
        }
        match candidate {
            Some(nt) => {
                if g.ref_counts().get(&nt).copied().unwrap_or(0) == 0 {
                    g.remove_rule(nt);
                    stats.removed_unreachable += 1;
                } else {
                    g.inline_everywhere_and_remove(nt);
                    stats.removed_single_ref += 1;
                }
            }
            None => break,
        }
    }

    // Phase 2: greedy anti-SL pass over the remaining rules.
    let order = g
        .anti_sl_order()
        .expect("pruning requires a straight-line grammar");
    for nt in order {
        if nt == g.start() || !g.has_rule(nt) {
            continue;
        }
        let refs = g.ref_counts();
        let rc = refs.get(&nt).copied().unwrap_or(0);
        if rc == 0 {
            g.remove_rule(nt);
            stats.removed_unreachable += 1;
            continue;
        }
        if savings_with(g, nt, rc) < 0 {
            g.inline_everywhere_and_remove(nt);
            stats.removed_unproductive += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;
    use crate::text::parse_grammar;

    #[test]
    fn single_reference_rules_are_inlined_away() {
        let mut g = parse_grammar("S -> f(A,#)\nA -> g(a(#,#))").unwrap();
        let before = fingerprint(&g);
        let stats = prune(&mut g);
        assert_eq!(stats.removed_single_ref, 1);
        assert_eq!(g.rule_count(), 1);
        assert_eq!(fingerprint(&g), before);
        g.validate().unwrap();
    }

    #[test]
    fn productive_rules_are_kept() {
        // A is used 4 times and saves plenty.
        let mut g = parse_grammar(
            "S -> f(f(A,A),f(A,A))\nA -> g(a(#,#), a(#,#))",
        )
        .unwrap();
        let before = fingerprint(&g);
        let stats = prune(&mut g);
        assert_eq!(stats.removed_unproductive, 0);
        assert_eq!(g.rule_count(), 2);
        assert_eq!(fingerprint(&g), before);
    }

    #[test]
    fn unproductive_small_rules_are_removed() {
        // B has size 1 (one edge) and rank 1: sav = 2*(1-1) - 1 = -1 < 0.
        let mut g = parse_grammar("S -> f(B(a), B(b))\nB -> g(y1)").unwrap();
        let before = fingerprint(&g);
        let stats = prune(&mut g);
        assert!(stats.removed_unproductive >= 1);
        assert_eq!(g.rule_count(), 1);
        assert_eq!(fingerprint(&g), before);
        g.validate().unwrap();
    }

    #[test]
    fn savings_formula_matches_paper() {
        let g = parse_grammar("S -> f(B(a), B(b))\nB -> g(y1)").unwrap();
        let b = g.nt_by_name("B").unwrap();
        // |ref| = 2, size = 1 edge, rank = 1: 2*(1-1) - 1 = -1.
        assert_eq!(savings(&g, b), -1);
    }

    #[test]
    fn unreachable_rules_are_collected() {
        let mut g = parse_grammar("S -> f(a,#)\nDead -> g(b(#,#), b(#,#), b(#,#))").unwrap();
        // "Dead" is parsed but unreachable (never referenced).
        let stats = prune(&mut g);
        assert_eq!(stats.removed_unreachable, 1);
        assert_eq!(g.rule_count(), 1);
    }
}
