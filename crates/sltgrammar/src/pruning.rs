//! Savings-based pruning of unproductive rules (paper Section IV-D).
//!
//! A rule `R → t_R` is *unproductive* if keeping it does not pay for itself:
//! `sav_G(R) = |ref_G(R)| · (size(t_R) − rank(R)) − size(t_R) < 0`,
//! where `size(t)` is the number of edges of `t`. Unproductive rules are removed
//! by inlining them at every reference. Following TreeRePair's greedy strategy,
//! rules referenced at most once are removed first, then the remaining rules are
//! examined in anti-straight-line order (callees first), recomputing savings as
//! inlining changes rule sizes.
//!
//! Reference counts are maintained *incrementally* through a reference-site
//! index built once up front: removing or inlining a rule touches only the
//! entries of the rules its body mentions (plus the freshly inlined copies).
//! Recomputing `Grammar::ref_counts` per removed rule — a full-grammar walk —
//! made pruning quadratic in the number of rules, which dominated whole-run
//! compression time on rule-heavy outputs (thousands of pattern rules).
//! Node ids are stable across splices and inlining commutes across distinct
//! sites, so index order never changes the pruned grammar.
//!
//! Rule *sizes* are carried the same way: `size(t_R)` is measured once per
//! rule up front, and every inlining adjusts the caller's cached size by
//! `size(callee) − rank(callee)` (an inline replaces the reference node and
//! the callee's parameter leaves by a copy of its body, which is exactly that
//! many extra edges). Phase 2 previously recomputed `rhs.edge_count()` — a
//! preorder walk — per candidate, which re-walked large caller bodies once
//! per surviving rule.

use std::collections::{BTreeMap, BTreeSet};

use crate::fxhash::FxHashMap;
use crate::grammar::Grammar;
use crate::node::NodeId;
use crate::symbol::NtId;

/// Statistics of one pruning pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Rules removed because they were referenced at most once.
    pub removed_single_ref: usize,
    /// Rules removed because their savings value was negative.
    pub removed_unproductive: usize,
    /// Rules removed because they became unreachable.
    pub removed_unreachable: usize,
}

impl PruneStats {
    /// Total number of removed rules.
    pub fn total(&self) -> usize {
        self.removed_single_ref + self.removed_unproductive + self.removed_unreachable
    }
}

/// The savings value `sav_G(R)` of the paper, using edge counts as sizes.
pub fn savings(g: &Grammar, nt: NtId) -> i64 {
    let refs = g.ref_counts();
    let rule = g.rule(nt);
    savings_of(
        rule.rhs.edge_count(),
        rule.rank,
        refs.get(&nt).copied().unwrap_or(0),
    )
}

fn savings_of(size: usize, rank: usize, ref_count: usize) -> i64 {
    (ref_count as i64) * (size as i64 - rank as i64) - size as i64
}

/// Reference-site index: for every rule, the set of `(caller, node)` pairs
/// referencing it. Ordered containers keep every iteration deterministic.
type SiteIndex = BTreeMap<NtId, BTreeSet<(NtId, NodeId)>>;

fn site_count(sites: &SiteIndex, nt: NtId) -> usize {
    sites.get(&nt).map(|s| s.len()).unwrap_or(0)
}

/// The nonterminal references in `nt`'s current body, as `(callee, node)`.
fn outgoing_refs(g: &Grammar, nt: NtId) -> Vec<(NtId, NodeId)> {
    let rhs = &g.rule(nt).rhs;
    rhs.preorder()
        .into_iter()
        .filter_map(|n| rhs.kind(n).as_nt().map(|callee| (callee, n)))
        .collect()
}

/// Drops `nt`'s body references from the index (run before removing `nt`).
fn unregister_outgoing(g: &Grammar, sites: &mut SiteIndex, nt: NtId) -> Vec<NtId> {
    let mut touched = Vec::new();
    for (callee, node) in outgoing_refs(g, nt) {
        if let Some(s) = sites.get_mut(&callee) {
            if s.remove(&(nt, node)) {
                touched.push(callee);
            }
        }
    }
    touched
}

/// Inlines `nt` at one site and registers the references of the inlined copy.
/// Re-inserting sites of argument subtrees that already lived in the caller is
/// harmless: node ids are stable across splices, so those entries are
/// idempotent. The caller's cached size grows by `size(callee) − rank(callee)`
/// — no re-walk of the caller body.
fn inline_site(
    g: &mut Grammar,
    sites: &mut SiteIndex,
    sizes: &mut FxHashMap<NtId, usize>,
    caller: NtId,
    node: NodeId,
) {
    let callee = g
        .rule(caller)
        .rhs
        .kind(node)
        .as_nt()
        .expect("inline site is a nonterminal node");
    let growth = sizes[&callee] - g.rule(callee).rank;
    let new_root = g.inline_at(caller, node);
    *sizes.get_mut(&caller).expect("caller is live") += growth;
    debug_assert_eq!(
        sizes[&caller],
        g.rule(caller).rhs.edge_count(),
        "cached size must track inlining"
    );
    let caller_rhs = &g.rule(caller).rhs;
    for n in caller_rhs.preorder_from(new_root) {
        if let Some(callee) = caller_rhs.kind(n).as_nt() {
            sites.entry(callee).or_default().insert((caller, n));
        }
    }
}

/// Removes unproductive rules from the grammar. The derived tree is unchanged.
pub fn prune(g: &mut Grammar) -> PruneStats {
    let mut stats = PruneStats::default();
    stats.removed_unreachable += g.gc();

    let mut sites: SiteIndex = SiteIndex::new();
    for (nt, refs) in g.refs() {
        sites.insert(nt, refs.into_iter().collect());
    }
    // Rule sizes, measured once; inlining updates them arithmetically.
    let mut sizes: FxHashMap<NtId, usize> = g
        .nonterminals()
        .into_iter()
        .map(|nt| (nt, g.rule(nt).rhs.edge_count()))
        .collect();

    // Phase 1: rules with a single reference never pay for themselves. After
    // the leading gc every rule is referenced at least once, and inlining a
    // single-reference rule moves its body references into the caller
    // one-for-one — no count ever changes — so the candidate set is fixed up
    // front and the inline closure has a unique fixpoint: processing order
    // cannot change the result. Order does drive the *cost*: callers first
    // means every rule body is copied exactly once (total work linear in the
    // grammar), whereas callees first recopies chained bodies quadratically.
    let order = g
        .anti_sl_order()
        .expect("pruning requires a straight-line grammar");
    for &nt in order.iter().rev() {
        if nt == g.start() || !g.has_rule(nt) {
            continue;
        }
        match site_count(&sites, nt) {
            0 => {
                // Defensive only: gc just removed every unreachable rule.
                unregister_outgoing(g, &mut sites, nt);
                sites.remove(&nt);
                sizes.remove(&nt);
                g.remove_rule(nt);
                stats.removed_unreachable += 1;
            }
            1 => {
                let &(caller, node) = sites[&nt].iter().next().expect("count is 1");
                unregister_outgoing(g, &mut sites, nt);
                inline_site(g, &mut sites, &mut sizes, caller, node);
                sites.remove(&nt);
                sizes.remove(&nt);
                g.remove_rule(nt);
                stats.removed_single_ref += 1;
            }
            _ => {}
        }
    }

    // Phase 2: greedy anti-SL pass over the remaining rules (callees first;
    // the order from before phase 1 is still a valid anti-SL order for the
    // surviving rules).
    for nt in order {
        if nt == g.start() || !g.has_rule(nt) {
            continue;
        }
        let rc = site_count(&sites, nt);
        if rc == 0 {
            unregister_outgoing(g, &mut sites, nt);
            sites.remove(&nt);
            sizes.remove(&nt);
            g.remove_rule(nt);
            stats.removed_unreachable += 1;
            continue;
        }
        if savings_of(sizes[&nt], g.rule(nt).rank, rc) < 0 {
            let site_list: Vec<(NtId, NodeId)> =
                sites.get(&nt).into_iter().flatten().copied().collect();
            unregister_outgoing(g, &mut sites, nt);
            for (caller, node) in site_list {
                inline_site(g, &mut sites, &mut sizes, caller, node);
            }
            sites.remove(&nt);
            sizes.remove(&nt);
            g.remove_rule(nt);
            stats.removed_unproductive += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;
    use crate::text::parse_grammar;

    #[test]
    fn single_reference_rules_are_inlined_away() {
        let mut g = parse_grammar("S -> f(A,#)\nA -> g(a(#,#))").unwrap();
        let before = fingerprint(&g);
        let stats = prune(&mut g);
        assert_eq!(stats.removed_single_ref, 1);
        assert_eq!(g.rule_count(), 1);
        assert_eq!(fingerprint(&g), before);
        g.validate().unwrap();
    }

    #[test]
    fn productive_rules_are_kept() {
        // A is used 4 times and saves plenty.
        let mut g = parse_grammar(
            "S -> f(f(A,A),f(A,A))\nA -> g(a(#,#), a(#,#))",
        )
        .unwrap();
        let before = fingerprint(&g);
        let stats = prune(&mut g);
        assert_eq!(stats.removed_unproductive, 0);
        assert_eq!(g.rule_count(), 2);
        assert_eq!(fingerprint(&g), before);
    }

    #[test]
    fn unproductive_small_rules_are_removed() {
        // B has size 1 (one edge) and rank 1: sav = 2*(1-1) - 1 = -1 < 0.
        let mut g = parse_grammar("S -> f(B(a), B(b))\nB -> g(y1)").unwrap();
        let before = fingerprint(&g);
        let stats = prune(&mut g);
        assert!(stats.removed_unproductive >= 1);
        assert_eq!(g.rule_count(), 1);
        assert_eq!(fingerprint(&g), before);
        g.validate().unwrap();
    }

    #[test]
    fn savings_formula_matches_paper() {
        let g = parse_grammar("S -> f(B(a), B(b))\nB -> g(y1)").unwrap();
        let b = g.nt_by_name("B").unwrap();
        // |ref| = 2, size = 1 edge, rank = 1: 2*(1-1) - 1 = -1.
        assert_eq!(savings(&g, b), -1);
    }

    #[test]
    fn unreachable_rules_are_collected() {
        let mut g = parse_grammar("S -> f(a,#)\nDead -> g(b(#,#), b(#,#), b(#,#))").unwrap();
        // "Dead" is parsed but unreachable (never referenced).
        let stats = prune(&mut g);
        assert_eq!(stats.removed_unreachable, 1);
        assert_eq!(g.rule_count(), 1);
    }
}
