//! Grammar introspection: size, shape and sharing statistics.
//!
//! These statistics back the `sltxml stats` command and the experiment
//! harness, and give library users a quick way to understand *why* a grammar
//! is as large as it is: how many rules exist, how big their right-hand sides
//! are, how deeply rules are nested, and how much each rule is shared.

use std::collections::HashMap;

use crate::fingerprint::derived_size;
use crate::grammar::Grammar;
use crate::node::NodeKind;
use crate::symbol::NtId;

/// Aggregate statistics of one grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct GrammarStats {
    /// Number of live rules (including the start rule).
    pub rules: usize,
    /// Total number of right-hand-side edges — the paper's grammar size.
    pub edges: usize,
    /// Total number of right-hand-side nodes.
    pub nodes: usize,
    /// Number of nodes of the derived tree `val(G)`.
    pub derived_nodes: u128,
    /// Compression ratio: `edges / (derived_nodes - 1)`.
    pub ratio: f64,
    /// Largest rule right-hand side (in nodes).
    pub max_rule_nodes: usize,
    /// Mean rule right-hand side size (in nodes).
    pub mean_rule_nodes: f64,
    /// Highest rule rank (number of parameters).
    pub max_rank: usize,
    /// Depth of the rule call hierarchy (start rule = 1).
    pub hierarchy_depth: usize,
    /// Number of rules referenced more than once (actually shared).
    pub shared_rules: usize,
    /// Largest reference count of any rule.
    pub max_refs: usize,
    /// Number of distinct terminal symbols (including the null symbol).
    pub terminals: usize,
}

/// Computes the aggregate statistics of a grammar in one pass plus the
/// derived-size fingerprint pass.
pub fn grammar_stats(g: &Grammar) -> GrammarStats {
    let nts = g.nonterminals();
    let rules = nts.len();
    let mut nodes = 0usize;
    let mut max_rule_nodes = 0usize;
    let mut max_rank = 0usize;
    for &nt in &nts {
        let rule = g.rule(nt);
        let n = rule.rhs.node_count();
        nodes += n;
        max_rule_nodes = max_rule_nodes.max(n);
        max_rank = max_rank.max(rule.rank);
    }
    let edges = g.edge_count();
    let derived_nodes = derived_size(g);
    let ratio = if derived_nodes > 1 {
        edges as f64 / (derived_nodes - 1) as f64
    } else {
        1.0
    };
    let ref_counts = g.ref_counts();
    let shared_rules = ref_counts.values().filter(|&&c| c > 1).count();
    let max_refs = ref_counts.values().copied().max().unwrap_or(0);

    GrammarStats {
        rules,
        edges,
        nodes,
        derived_nodes,
        ratio,
        max_rule_nodes,
        mean_rule_nodes: nodes as f64 / rules.max(1) as f64,
        max_rank,
        hierarchy_depth: hierarchy_depth(g),
        shared_rules,
        max_refs,
        terminals: g.symbols.len(),
    }
}

/// Length of the longest chain of nested rule calls, starting from (and
/// including) the start rule. A trivial single-rule grammar has depth 1.
pub fn hierarchy_depth(g: &Grammar) -> usize {
    let order = g
        .anti_sl_order()
        .expect("statistics require a straight-line grammar");
    // Process callees before callers: depth(rule) = 1 + max(depth(callee)).
    let mut depth: HashMap<NtId, usize> = HashMap::new();
    for &nt in &order {
        let rhs = &g.rule(nt).rhs;
        let mut d = 1usize;
        for node in rhs.preorder() {
            if let NodeKind::Nt(callee) = rhs.kind(node) {
                d = d.max(1 + depth.get(&callee).copied().unwrap_or(1));
            }
        }
        depth.insert(nt, d);
    }
    depth.get(&g.start()).copied().unwrap_or(1)
}

/// Histogram of rule right-hand-side sizes (in nodes), as `(bucket upper
/// bound, count)` pairs with power-of-two buckets: ≤2, ≤4, ≤8, …
pub fn rule_size_histogram(g: &Grammar) -> Vec<(usize, usize)> {
    let mut sizes: Vec<usize> = g
        .nonterminals()
        .iter()
        .map(|&nt| g.rule(nt).rhs.node_count())
        .collect();
    sizes.sort_unstable();
    let max = sizes.last().copied().unwrap_or(0);
    let mut buckets = Vec::new();
    let mut bound = 2usize;
    while bound / 2 < max.max(1) {
        let count = sizes
            .iter()
            .filter(|&&s| s <= bound && s > bound / 2)
            .count()
            + if bound == 2 { sizes.iter().filter(|&&s| s <= 1).count() } else { 0 };
        buckets.push((bound, count));
        bound *= 2;
    }
    buckets
}

impl GrammarStats {
    /// Renders the statistics as an aligned multi-line report.
    pub fn report(&self) -> String {
        format!(
            "rules             {}\n\
             grammar edges     {}\n\
             grammar nodes     {}\n\
             derived nodes     {}\n\
             compression       {:.4} ({:.2} %)\n\
             largest rule      {} nodes\n\
             mean rule size    {:.1} nodes\n\
             max rank          {}\n\
             hierarchy depth   {}\n\
             shared rules      {}\n\
             max references    {}\n\
             terminal symbols  {}\n",
            self.rules,
            self.edges,
            self.nodes,
            self.derived_nodes,
            self.ratio,
            100.0 * self.ratio,
            self.max_rule_nodes,
            self.mean_rule_nodes,
            self.max_rank,
            self.hierarchy_depth,
            self.shared_rules,
            self.max_refs,
            self.terminals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse_grammar;

    fn paper_grammar() -> Grammar {
        parse_grammar("S -> f(A(B,B),#)\nB -> A(#,#)\nA -> a(#, a(y1, y2))").unwrap()
    }

    #[test]
    fn stats_of_the_paper_example() {
        let g = paper_grammar();
        let s = grammar_stats(&g);
        assert_eq!(s.rules, 3);
        assert_eq!(s.edges, 10);
        assert_eq!(s.nodes, 13);
        assert_eq!(s.derived_nodes, 15);
        assert!(s.ratio > 0.7 && s.ratio < 0.72, "ratio {}", s.ratio);
        assert_eq!(s.max_rule_nodes, 5);
        assert_eq!(s.max_rank, 2);
        // S calls B calls A: depth 3.
        assert_eq!(s.hierarchy_depth, 3);
        // A (2 refs) and B (2 refs) are shared.
        assert_eq!(s.shared_rules, 2);
        assert_eq!(s.max_refs, 2);
        assert_eq!(s.terminals, 3); // f, a, #
        let report = s.report();
        assert!(report.contains("rules             3"));
        assert!(report.contains("hierarchy depth   3"));
    }

    #[test]
    fn trivial_grammar_has_depth_one_and_no_sharing() {
        let g = parse_grammar("S -> a(b(#,#), #)").unwrap();
        let s = grammar_stats(&g);
        assert_eq!(s.rules, 1);
        assert_eq!(s.hierarchy_depth, 1);
        assert_eq!(s.shared_rules, 0);
        assert_eq!(s.max_refs, 0);
        assert_eq!(s.derived_nodes, 5);
    }

    #[test]
    fn exponential_grammar_has_tiny_ratio_and_deep_hierarchy() {
        let mut text = String::from("S -> A1(A1(#))\n");
        for i in 1..=9 {
            text.push_str(&format!("A{i} -> A{}(A{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("A10 -> a(y1)");
        let g = parse_grammar(&text).unwrap();
        let s = grammar_stats(&g);
        assert_eq!(s.rules, 11);
        assert_eq!(s.derived_nodes, 1025);
        assert!(s.ratio < 0.05);
        assert_eq!(s.hierarchy_depth, 11);
        assert_eq!(s.shared_rules, 10);
    }

    #[test]
    fn histogram_buckets_cover_all_rules() {
        let g = paper_grammar();
        let hist = rule_size_histogram(&g);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, g.rule_count());
        // Rule sizes are 5, 3, 5: buckets (2,0), (4,1), (8,2).
        assert_eq!(hist, vec![(2, 0), (4, 1), (8, 2)]);
    }
}
