//! Node kinds and node identifiers for rule right-hand sides.

use crate::symbol::{NtId, TermId};

/// Identifier of a node inside one [`crate::rhs::RhsTree`] arena.
///
/// Node ids are stable across splice operations (inlining, digram replacement):
/// a node keeps its id for as long as it is attached to the tree. Ids of
/// detached nodes must not be reused by callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The label of a node in a rule right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A terminal symbol of the ranked alphabet.
    Term(TermId),
    /// A reference to another rule (nonterminal); its children are the
    /// argument subtrees substituted for the rule's parameters.
    Nt(NtId),
    /// Formal parameter `y_{i+1}` (0-based index stored).
    Param(u32),
}

impl NodeKind {
    /// Returns the terminal id if this node is a terminal.
    pub fn as_term(self) -> Option<TermId> {
        match self {
            NodeKind::Term(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the nonterminal id if this node is a rule reference.
    pub fn as_nt(self) -> Option<NtId> {
        match self {
            NodeKind::Nt(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the 0-based parameter index if this node is a parameter.
    pub fn as_param(self) -> Option<u32> {
        match self {
            NodeKind::Param(i) => Some(i),
            _ => None,
        }
    }

    /// Whether this node is a terminal.
    pub fn is_term(self) -> bool {
        matches!(self, NodeKind::Term(_))
    }

    /// Whether this node is a nonterminal reference.
    pub fn is_nt(self) -> bool {
        matches!(self, NodeKind::Nt(_))
    }

    /// Whether this node is a formal parameter.
    pub fn is_param(self) -> bool {
        matches!(self, NodeKind::Param(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_kind() {
        let t = NodeKind::Term(TermId(3));
        assert_eq!(t.as_term(), Some(TermId(3)));
        assert!(t.is_term() && !t.is_nt() && !t.is_param());

        let n = NodeKind::Nt(NtId(1));
        assert_eq!(n.as_nt(), Some(NtId(1)));
        assert!(n.is_nt());
        assert_eq!(n.as_term(), None);

        let p = NodeKind::Param(0);
        assert_eq!(p.as_param(), Some(0));
        assert!(p.is_param());
        assert_eq!(p.as_nt(), None);
    }
}
