//! Arena-based right-hand-side trees of grammar rules.
//!
//! An [`RhsTree`] stores the tree of one rule right-hand side in a flat arena of
//! nodes with parent pointers. All structural operations the compression and
//! update algorithms need — inlining a callee rule at a reference, replacing a
//! digram occurrence by a fresh nonterminal, exporting a fragment into a new
//! rule — are local splice operations on this arena.
//!
//! Nodes detached by splices remain allocated as garbage until [`RhsTree::compact`]
//! is called; all size queries therefore traverse from the root and never scan
//! the raw arena.
//!
//! Every mutating operation bumps a monotonically increasing [`RhsTree::version`]
//! counter. Incremental consumers (the grammar-side occurrence index, caches of
//! rule sizes) record the version they last observed and treat any mismatch as
//! "this right-hand side changed, re-derive everything you cached about it" —
//! the splice itself does not have to enumerate which parent/child pairs it
//! touched.

use crate::fxhash::FxHashMap;
use crate::node::{NodeId, NodeKind};

/// One node of a right-hand-side tree.
#[derive(Debug, Clone)]
pub struct RhsNode {
    /// Label of the node.
    pub kind: NodeKind,
    /// Parent node, `None` for the root and for detached (garbage) nodes.
    pub parent: Option<NodeId>,
    /// Children in left-to-right order; length must equal the label's rank.
    pub children: Vec<NodeId>,
}

/// Arena tree representing one rule right-hand side.
#[derive(Debug, Clone)]
pub struct RhsTree {
    nodes: Vec<RhsNode>,
    root: NodeId,
    /// Mutation counter: bumped by every structural or label change. See the
    /// module docs; cloning preserves the current value.
    version: u64,
}

impl RhsTree {
    /// Creates a tree consisting of a single node with the given label.
    pub fn singleton(kind: NodeKind) -> Self {
        RhsTree {
            nodes: vec![RhsNode {
                kind,
                parent: None,
                children: Vec::new(),
            }],
            root: NodeId(0),
            version: 0,
        }
    }

    /// Current mutation version. Any mutating call makes this strictly larger;
    /// two reads returning the same value bracket a span with no changes.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Adds a floating node (no parent) with already-added children.
    ///
    /// The children must currently be floating (roots of detached subtrees or
    /// freshly added nodes); they are re-parented under the new node.
    pub fn add_node(&mut self, kind: NodeKind, children: Vec<NodeId>) -> NodeId {
        self.version += 1;
        let id = NodeId(self.nodes.len() as u32);
        for &c in &children {
            debug_assert!(self.nodes[c.index()].parent.is_none(), "child must be floating");
            self.nodes[c.index()].parent = Some(id);
        }
        self.nodes.push(RhsNode {
            kind,
            parent: None,
            children,
        });
        id
    }

    /// Adds a floating leaf node.
    pub fn add_leaf(&mut self, kind: NodeKind) -> NodeId {
        self.add_node(kind, Vec::new())
    }

    /// Makes `id` the root of the tree. The node must be floating.
    pub fn set_root(&mut self, id: NodeId) {
        debug_assert!(self.nodes[id.index()].parent.is_none());
        self.version += 1;
        self.root = id;
    }

    /// Root node of the tree.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Label of a node.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()].kind
    }

    /// Overwrites the label of a node (used by rename updates). The caller is
    /// responsible for keeping the child count consistent with the new label's
    /// rank.
    pub fn set_kind(&mut self, id: NodeId, kind: NodeKind) {
        self.version += 1;
        self.nodes[id.index()].kind = kind;
    }

    /// Children of a node.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Position of `id` among its parent's children (0-based).
    pub fn child_index(&self, id: NodeId) -> Option<usize> {
        let p = self.parent(id)?;
        self.children(p).iter().position(|&c| c == id)
    }

    /// Total number of nodes in the arena, including garbage. Useful only as a
    /// capacity indicator; use [`RhsTree::node_count`] for the logical size.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from the root.
    pub fn node_count(&self) -> usize {
        self.preorder().len()
    }

    /// Number of edges reachable from the root (`node_count - 1`).
    pub fn edge_count(&self) -> usize {
        self.node_count().saturating_sub(1)
    }

    /// Number of nodes in the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.preorder_from(id).len()
    }

    /// Preorder traversal of the whole tree.
    pub fn preorder(&self) -> Vec<NodeId> {
        self.preorder_from(self.root)
    }

    /// Preorder traversal of the subtree rooted at `id`.
    pub fn preorder_from(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            let ch = self.children(n);
            for &c in ch.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The `n`-th node (1-based) of the tree in preorder — the paper's `(R, n)`
    /// addressing. Returns `None` if `n` is 0 or exceeds the node count.
    pub fn nth_preorder(&self, n: usize) -> Option<NodeId> {
        if n == 0 {
            return None;
        }
        self.preorder().get(n - 1).copied()
    }

    /// 1-based preorder index of a node (inverse of [`RhsTree::nth_preorder`]).
    pub fn preorder_index(&self, id: NodeId) -> Option<usize> {
        self.preorder().iter().position(|&x| x == id).map(|i| i + 1)
    }

    /// Parameter nodes `(index, node)` in preorder.
    pub fn param_nodes(&self) -> Vec<(u32, NodeId)> {
        self.preorder()
            .into_iter()
            .filter_map(|id| self.kind(id).as_param().map(|p| (p, id)))
            .collect()
    }

    /// Finds the unique node labelled with parameter `i` (0-based), if present.
    pub fn find_param(&self, i: u32) -> Option<NodeId> {
        self.preorder()
            .into_iter()
            .find(|&id| self.kind(id) == NodeKind::Param(i))
    }

    /// Detaches `id` from its parent, making it a floating subtree root.
    /// Does nothing if `id` is the root or already floating.
    pub fn detach(&mut self, id: NodeId) {
        self.version += 1;
        if let Some(p) = self.nodes[id.index()].parent {
            let pos = self.nodes[p.index()]
                .children
                .iter()
                .position(|&c| c == id)
                .expect("parent/child links consistent");
            self.nodes[p.index()].children.remove(pos);
            self.nodes[id.index()].parent = None;
        }
    }

    /// Replaces the subtree rooted at `at` by the floating subtree rooted at
    /// `replacement`. The old subtree at `at` becomes floating garbage.
    pub fn replace_subtree(&mut self, at: NodeId, replacement: NodeId) {
        debug_assert!(self.nodes[replacement.index()].parent.is_none());
        self.version += 1;
        if at == self.root {
            self.nodes[at.index()].parent = None;
            self.root = replacement;
            return;
        }
        let parent = self.nodes[at.index()].parent.expect("non-root node has a parent");
        let pos = self.nodes[parent.index()]
            .children
            .iter()
            .position(|&c| c == at)
            .expect("parent/child links consistent");
        self.nodes[parent.index()].children[pos] = replacement;
        self.nodes[replacement.index()].parent = Some(parent);
        self.nodes[at.index()].parent = None;
    }

    /// Attaches the floating subtree `child` as the last child of `parent`.
    pub fn push_child(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(self.nodes[child.index()].parent.is_none());
        self.version += 1;
        self.nodes[parent.index()].children.push(child);
        self.nodes[child.index()].parent = Some(parent);
    }

    /// Copies the subtree rooted at `src_node` of `src` into this arena and
    /// returns the id of the (floating) copy root. Parameters are copied verbatim.
    pub fn clone_subtree_from(&mut self, src: &RhsTree, src_node: NodeId) -> NodeId {
        // Iterative post-order copy to avoid recursion depth limits on deep trees.
        // We copy children first, then the node itself.
        let order = src.preorder_from(src_node);
        let mut new_ids: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        for &n in order.iter().rev() {
            let child_copies: Vec<NodeId> = src
                .children(n)
                .iter()
                .map(|c| {
                    let id = new_ids[c];
                    // children were added floating; keep them floating until attached below
                    id
                })
                .collect();
            let id = self.add_node(src.kind(n), child_copies);
            new_ids.insert(n, id);
        }
        new_ids[&src_node]
    }

    /// Copies the subtree rooted at `node` of this tree and returns the floating copy root.
    pub fn clone_subtree(&mut self, node: NodeId) -> NodeId {
        let order = self.preorder_from(node);
        let mut new_ids: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        for &n in order.iter().rev() {
            let child_copies: Vec<NodeId> =
                self.children(n).iter().map(|c| new_ids[c]).collect();
            let id = self.add_node(self.kind(n), child_copies);
            new_ids.insert(n, id);
        }
        new_ids[&node]
    }

    /// Inlines `rule_rhs` (the right-hand side of the rule labelling node `at`,
    /// which must be a nonterminal reference) at `at`.
    ///
    /// The `j`-th parameter of the copy is substituted by the subtree that was
    /// the `j`-th child (argument) of `at`. Returns the id of the root of the
    /// inlined copy, which now occupies `at`'s former position.
    pub fn inline_at(&mut self, at: NodeId, rule_rhs: &RhsTree) -> NodeId {
        debug_assert!(self.kind(at).is_nt(), "inline_at target must be a nonterminal node");
        self.version += 1;
        // Detach argument subtrees.
        let args: Vec<NodeId> = self.children(at).to_vec();
        for &a in &args {
            self.nodes[a.index()].parent = None;
        }
        self.nodes[at.index()].children.clear();

        // Copy the rule body, substituting parameters by the argument subtrees.
        let order = rule_rhs.preorder();
        let mut new_ids: FxHashMap<NodeId, NodeId> =
            FxHashMap::with_capacity_and_hasher(order.len(), Default::default());
        for &n in order.iter().rev() {
            match rule_rhs.kind(n) {
                NodeKind::Param(j) => {
                    let arg = args[j as usize];
                    new_ids.insert(n, arg);
                }
                kind => {
                    let child_copies: Vec<NodeId> =
                        rule_rhs.children(n).iter().map(|c| new_ids[c]).collect();
                    let id = self.add_node(kind, child_copies);
                    new_ids.insert(n, id);
                }
            }
        }
        let new_root = new_ids[&rule_rhs.root()];
        self.replace_subtree(at, new_root);
        new_root
    }

    /// Rebuilds the arena keeping only nodes reachable from the root.
    ///
    /// All previously held [`NodeId`]s are invalidated; only call this when no
    /// external node ids are retained.
    pub fn compact(&mut self) {
        self.version += 1;
        let order = self.preorder();
        let mut map: FxHashMap<NodeId, NodeId> =
            FxHashMap::with_capacity_and_hasher(order.len(), Default::default());
        for (i, &old) in order.iter().enumerate() {
            map.insert(old, NodeId(i as u32));
        }
        let mut nodes = Vec::with_capacity(order.len());
        for &old in &order {
            let n = &self.nodes[old.index()];
            nodes.push(RhsNode {
                kind: n.kind,
                parent: n.parent.map(|p| map[&p]),
                children: n.children.iter().map(|c| map[c]).collect(),
            });
        }
        self.nodes = nodes;
        self.root = map[&self.root];
    }

    /// Checks structural invariants: parent/child links are consistent and the
    /// reachable part of the arena forms a tree rooted at `root`.
    pub fn check_links(&self) -> bool {
        let order = self.preorder();
        let mut seen = std::collections::HashSet::new();
        for &n in &order {
            if !seen.insert(n) {
                return false; // node reachable twice => not a tree
            }
            for &c in self.children(n) {
                if self.parent(c) != Some(n) {
                    return false;
                }
            }
        }
        self.parent(self.root).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::TermId;

    fn term(i: u32) -> NodeKind {
        NodeKind::Term(TermId(i))
    }

    /// Builds a(b, c(d)) and returns (tree, ids).
    fn sample() -> (RhsTree, Vec<NodeId>) {
        let mut t = RhsTree::singleton(term(0)); // a
        let a = t.root();
        let b = t.add_leaf(term(1));
        let d = t.add_leaf(term(3));
        let c = t.add_node(term(2), vec![d]);
        t.push_child(a, b);
        t.push_child(a, c);
        (t, vec![a, b, c, d])
    }

    #[test]
    fn build_and_navigate() {
        let (t, ids) = sample();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.children(ids[0]), &[ids[1], ids[2]]);
        assert_eq!(t.parent(ids[3]), Some(ids[2]));
        assert_eq!(t.child_index(ids[2]), Some(1));
        assert_eq!(t.child_index(ids[0]), None);
        assert!(t.check_links());
    }

    #[test]
    fn preorder_addressing_is_one_based() {
        let (t, ids) = sample();
        let pre = t.preorder();
        assert_eq!(pre, vec![ids[0], ids[1], ids[2], ids[3]]);
        assert_eq!(t.nth_preorder(1), Some(ids[0]));
        assert_eq!(t.nth_preorder(4), Some(ids[3]));
        assert_eq!(t.nth_preorder(0), None);
        assert_eq!(t.nth_preorder(5), None);
        assert_eq!(t.preorder_index(ids[2]), Some(3));
    }

    #[test]
    fn replace_subtree_splices_correctly() {
        let (mut t, ids) = sample();
        let fresh = t.add_leaf(term(9));
        t.replace_subtree(ids[2], fresh);
        assert_eq!(t.children(ids[0]), &[ids[1], fresh]);
        assert_eq!(t.node_count(), 3);
        assert!(t.check_links());

        // Replacing the root swaps the root pointer.
        let fresh2 = t.add_leaf(term(8));
        let root = t.root();
        t.replace_subtree(root, fresh2);
        assert_eq!(t.root(), fresh2);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn clone_subtree_duplicates_structure() {
        let (mut t, ids) = sample();
        let copy = t.clone_subtree(ids[2]); // c(d)
        assert_eq!(t.kind(copy), term(2));
        assert_eq!(t.children(copy).len(), 1);
        assert_eq!(t.kind(t.children(copy)[0]), term(3));
        assert!(t.parent(copy).is_none());
        // Original untouched.
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn inline_substitutes_parameters_by_arguments() {
        // Rule body: f(y1, g(y2))   — inline at node Nt with args (b, c)
        use crate::symbol::NtId;
        let mut body = RhsTree::singleton(term(10)); // f
        let f = body.root();
        let y1 = body.add_leaf(NodeKind::Param(0));
        let y2 = body.add_leaf(NodeKind::Param(1));
        let g = body.add_node(term(11), vec![y2]);
        body.push_child(f, y1);
        body.push_child(f, g);

        // Host: root = a(A(b, c))
        let mut host = RhsTree::singleton(term(0));
        let a = host.root();
        let b = host.add_leaf(term(1));
        let c = host.add_leaf(term(2));
        let call = host.add_node(NodeKind::Nt(NtId(0)), vec![b, c]);
        host.push_child(a, call);

        let new_root = host.inline_at(call, &body);
        // Expect a(f(b, g(c)))
        assert_eq!(host.kind(new_root), term(10));
        assert_eq!(host.children(a), &[new_root]);
        let f_children = host.children(new_root).to_vec();
        assert_eq!(f_children.len(), 2);
        assert_eq!(host.kind(f_children[0]), term(1));
        assert_eq!(host.kind(f_children[1]), term(11));
        assert_eq!(host.kind(host.children(f_children[1])[0]), term(2));
        assert_eq!(host.node_count(), 5);
        assert!(host.check_links());
    }

    #[test]
    fn compact_preserves_shape() {
        let (mut t, ids) = sample();
        let fresh = t.add_leaf(term(9));
        t.replace_subtree(ids[2], fresh); // creates garbage
        let before: Vec<_> = t.preorder().iter().map(|&n| t.kind(n)).collect();
        t.compact();
        let after: Vec<_> = t.preorder().iter().map(|&n| t.kind(n)).collect();
        assert_eq!(before, after);
        assert_eq!(t.arena_len(), t.node_count());
        assert!(t.check_links());
    }

    #[test]
    fn detach_and_push_child_move_subtrees() {
        let (mut t, ids) = sample();
        t.detach(ids[1]); // detach b
        assert_eq!(t.node_count(), 3);
        assert!(t.parent(ids[1]).is_none());
        t.push_child(ids[3], ids[1]); // d gets child b (ranks not checked here)
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.parent(ids[1]), Some(ids[3]));
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let (mut t, ids) = sample();
        let mut last = t.version();
        let expect_bump = |t: &RhsTree, last: &mut u64, what: &str| {
            assert!(t.version() > *last, "{what} must bump the version");
            *last = t.version();
        };
        t.add_leaf(term(7));
        expect_bump(&t, &mut last, "add_leaf");
        t.set_kind(ids[1], term(8));
        expect_bump(&t, &mut last, "set_kind");
        t.detach(ids[1]);
        expect_bump(&t, &mut last, "detach");
        t.push_child(ids[0], ids[1]);
        expect_bump(&t, &mut last, "push_child");
        let fresh = t.add_leaf(term(9));
        t.replace_subtree(ids[2], fresh);
        expect_bump(&t, &mut last, "replace_subtree");
        t.compact();
        expect_bump(&t, &mut last, "compact");
        // Read-only calls leave it alone.
        let _ = t.preorder();
        let _ = t.node_count();
        assert_eq!(t.version(), last);
    }

    #[test]
    fn param_helpers() {
        let mut t = RhsTree::singleton(term(0));
        let r = t.root();
        let p0 = t.add_leaf(NodeKind::Param(0));
        let p1 = t.add_leaf(NodeKind::Param(1));
        t.push_child(r, p1);
        t.push_child(r, p0);
        let params = t.param_nodes();
        assert_eq!(params.len(), 2);
        assert_eq!(t.find_param(0), Some(p0));
        assert_eq!(t.find_param(1), Some(p1));
        assert_eq!(t.find_param(2), None);
    }
}
