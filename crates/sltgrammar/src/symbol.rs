//! Ranked terminal alphabet with string interning.
//!
//! A [`SymbolTable`] maps terminal names to compact [`TermId`]s and records the
//! rank (number of children) of each terminal. Binary XML trees use terminals of
//! rank 2 plus the distinguished *null* symbol `#` (the paper's `⊥`) of rank 0.

use std::collections::HashMap;

use crate::error::{GrammarError, Result};

/// Name used for the null / empty-node symbol (the paper writes `⊥`).
pub const NULL_SYMBOL_NAME: &str = "#";

/// Identifier of a terminal symbol inside a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// Index into the table's internal vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a nonterminal (a grammar rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NtId(pub u32);

impl NtId {
    /// Index into the grammar's rule vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned ranked alphabet of terminal symbols.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    ranks: Vec<usize>,
    by_name: HashMap<String, TermId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` with the given `rank`.
    ///
    /// Returns the existing id if the symbol is already present with the same
    /// rank, and an error if it was previously interned with a different rank.
    pub fn intern(&mut self, name: &str, rank: usize) -> Result<TermId> {
        if let Some(&id) = self.by_name.get(name) {
            let existing = self.ranks[id.index()];
            if existing != rank {
                return Err(GrammarError::RankMismatch {
                    name: name.to_string(),
                    expected: existing,
                    found: rank,
                });
            }
            return Ok(id);
        }
        let id = TermId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ranks.push(rank);
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Interns (or returns) the null symbol `#` of rank 0.
    pub fn null(&mut self) -> TermId {
        self.intern(NULL_SYMBOL_NAME, 0)
            .expect("null symbol always has rank 0")
    }

    /// Looks up a symbol by name without interning it.
    pub fn get(&self, name: &str) -> Option<TermId> {
        self.by_name.get(name).copied()
    }

    /// Returns `true` if `id` is the null symbol.
    pub fn is_null(&self, id: TermId) -> bool {
        self.names[id.index()] == NULL_SYMBOL_NAME
    }

    /// Name of a terminal.
    pub fn name(&self, id: TermId) -> &str {
        &self.names[id.index()]
    }

    /// Rank (number of children) of a terminal.
    pub fn rank(&self, id: TermId) -> usize {
        self.ranks[id.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(id, name, rank)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str, usize)> + '_ {
        self.names
            .iter()
            .zip(self.ranks.iter())
            .enumerate()
            .map(|(i, (n, &r))| (TermId(i as u32), n.as_str(), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("a", 2).unwrap();
        let a2 = t.intern("a", 2).unwrap();
        assert_eq!(a, a2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.rank(a), 2);
    }

    #[test]
    fn rank_conflict_is_rejected() {
        let mut t = SymbolTable::new();
        t.intern("a", 2).unwrap();
        let err = t.intern("a", 3).unwrap_err();
        assert!(matches!(err, GrammarError::RankMismatch { .. }));
    }

    #[test]
    fn null_symbol_has_rank_zero() {
        let mut t = SymbolTable::new();
        let null = t.null();
        assert!(t.is_null(null));
        assert_eq!(t.rank(null), 0);
        assert_eq!(t.null(), null);
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.get("a").is_none());
        let a = t.intern("a", 0).unwrap();
        assert_eq!(t.get("a"), Some(a));
    }

    #[test]
    fn iter_lists_all_symbols() {
        let mut t = SymbolTable::new();
        t.intern("a", 2).unwrap();
        t.intern("b", 0).unwrap();
        let all: Vec<_> = t.iter().map(|(_, n, r)| (n.to_string(), r)).collect();
        assert_eq!(all, vec![("a".to_string(), 2), ("b".to_string(), 0)]);
    }
}
