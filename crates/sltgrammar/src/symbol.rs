//! Ranked terminal alphabet with string interning and cross-table sharing.
//!
//! A [`SymbolTable`] maps terminal names to compact [`TermId`]s and records the
//! rank (number of children) of each terminal. Binary XML trees use terminals of
//! rank 2 plus the distinguished *null* symbol `#` (the paper's `⊥`) of rank 0.
//!
//! # Shared segments
//!
//! Collections of similar documents share most of their label alphabet (the
//! observation behind structural self-indexes over document collections), so a
//! table is internally split into two parts:
//!
//! * a list of immutable **shared segments** behind [`Arc`]s — cloning the
//!   table clones the `Arc`s, not the strings, so any number of documents can
//!   reference one resident copy of the common alphabet, and ids interned in a
//!   shared segment mean the *same* label in every table that shares it;
//! * a mutable **local tail** holding symbols interned after the last
//!   [`SymbolTable::seal`] — private to this table (the same local id may name
//!   different labels in two tables that diverged after forking).
//!
//! [`SymbolTable::seal`] rolls the local tail into a fresh shared segment;
//! the id of every symbol is stable across sealing and cloning. A store that
//! owns a master table interns a new document's labels, seals, and hands the
//! document a clone — the document's whole load-time alphabet is then shared.
//! Sealing with an empty tail is a no-op, so segments only accumulate when a
//! load actually introduced labels; name lookups that *miss* probe one map
//! per segment, the deliberate trade-off for zero-copy cloning (a cumulative
//! per-table name index would duplicate exactly the memory sharing saves).
//! [`SymbolTable::absorb`] re-interns a foreign table's symbols and returns
//! the id remapping, the seam for rebasing an existing grammar onto a shared
//! table. [`SymbolTable::heap_bytes`] / [`SymbolTable::local_heap_bytes`] /
//! [`SymbolTable::shared_segments`] expose the (estimated) resident sizes so
//! a multi-document holder can report deduplicated totals.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{GrammarError, Result};

/// Name used for the null / empty-node symbol (the paper writes `⊥`).
pub const NULL_SYMBOL_NAME: &str = "#";

/// Identifier of a terminal symbol inside a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// Index into the table's internal vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a nonterminal (a grammar rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NtId(pub u32);

impl NtId {
    /// Index into the grammar's rule vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One immutable run of interned symbols covering ids
/// `[start, start + names.len())`, shared between tables behind an [`Arc`].
#[derive(Debug)]
struct Segment {
    /// First id covered by this segment.
    start: u32,
    names: Vec<String>,
    ranks: Vec<usize>,
    /// Name → global id, for the names of this segment only.
    by_name: HashMap<String, TermId>,
}

impl Segment {
    fn len(&self) -> u32 {
        self.names.len() as u32
    }

    /// Estimated resident heap bytes of this segment (strings + map entries).
    fn heap_bytes(&self) -> usize {
        symbol_heap_bytes(&self.names)
    }
}

/// Estimated heap bytes one symbol of the given name length contributes:
/// two string buffers (vector + map key) + two `String` headers + rank +
/// map-entry overhead. An estimate with a fixed per-entry constant — the
/// point is comparing layouts (shared vs private), not byte-exact accounting.
fn one_symbol_heap_bytes(name_len: usize) -> usize {
    2 * name_len + 2 * std::mem::size_of::<String>() + 8 + 16
}

/// Estimated heap bytes of `names` interned once (see [`one_symbol_heap_bytes`]).
fn symbol_heap_bytes(names: &[String]) -> usize {
    names.iter().map(|n| one_symbol_heap_bytes(n.len())).sum()
}

/// Interned ranked alphabet of terminal symbols (see the module docs for the
/// shared-segment layout).
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// Immutable shared segments, ordered by `start`, gap-free from id 0.
    segments: Vec<Arc<Segment>>,
    /// Total number of ids covered by `segments`.
    shared_len: u32,
    /// Symbols interned after the last seal; id `shared_len + i` for index `i`.
    local_names: Vec<String>,
    local_ranks: Vec<usize>,
    local_by_name: HashMap<String, TermId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` with the given `rank`.
    ///
    /// Returns the existing id if the symbol is already present with the same
    /// rank, and an error if it was previously interned with a different rank.
    pub fn intern(&mut self, name: &str, rank: usize) -> Result<TermId> {
        if let Some(id) = self.get(name) {
            let existing = self.rank(id);
            if existing != rank {
                return Err(GrammarError::RankMismatch {
                    name: name.to_string(),
                    expected: existing,
                    found: rank,
                });
            }
            return Ok(id);
        }
        let id = TermId(self.shared_len + self.local_names.len() as u32);
        self.local_names.push(name.to_string());
        self.local_ranks.push(rank);
        self.local_by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Interns (or returns) the null symbol `#` of rank 0.
    pub fn null(&mut self) -> TermId {
        self.intern(NULL_SYMBOL_NAME, 0)
            .expect("null symbol always has rank 0")
    }

    /// Looks up a symbol by name without interning it.
    pub fn get(&self, name: &str) -> Option<TermId> {
        if let Some(&id) = self.local_by_name.get(name) {
            return Some(id);
        }
        self.segments
            .iter()
            .find_map(|seg| seg.by_name.get(name).copied())
    }

    /// Returns `true` if `id` is the null symbol.
    pub fn is_null(&self, id: TermId) -> bool {
        self.name(id) == NULL_SYMBOL_NAME
    }

    /// The segment containing `id` and `id`'s offset inside it. `id` must be
    /// a shared id (`id.0 < self.shared_len`).
    #[inline]
    fn shared_slot(&self, id: TermId) -> (&Segment, usize) {
        let i = self
            .segments
            .partition_point(|seg| seg.start + seg.len() <= id.0);
        let seg = &self.segments[i];
        (seg, (id.0 - seg.start) as usize)
    }

    /// Name of a terminal.
    pub fn name(&self, id: TermId) -> &str {
        if id.0 >= self.shared_len {
            return &self.local_names[(id.0 - self.shared_len) as usize];
        }
        let (seg, off) = self.shared_slot(id);
        &seg.names[off]
    }

    /// Rank (number of children) of a terminal.
    pub fn rank(&self, id: TermId) -> usize {
        if id.0 >= self.shared_len {
            return self.local_ranks[(id.0 - self.shared_len) as usize];
        }
        let (seg, off) = self.shared_slot(id);
        seg.ranks[off]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.shared_len as usize + self.local_names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all `(id, name, rank)` triples in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str, usize)> + '_ {
        let shared = self.segments.iter().flat_map(|seg| {
            seg.names
                .iter()
                .zip(seg.ranks.iter())
                .enumerate()
                .map(move |(i, (n, &r))| (TermId(seg.start + i as u32), n.as_str(), r))
        });
        let base = self.shared_len;
        let local = self
            .local_names
            .iter()
            .zip(self.local_ranks.iter())
            .enumerate()
            .map(move |(i, (n, &r))| (TermId(base + i as u32), n.as_str(), r));
        shared.chain(local)
    }

    // ----- sharing -----

    /// Rolls the local tail into a fresh immutable shared segment. Ids are
    /// unchanged; clones taken *after* sealing share the new segment's strings
    /// instead of copying them. No-op if the local tail is empty.
    pub fn seal(&mut self) {
        if self.local_names.is_empty() {
            return;
        }
        let seg = Segment {
            start: self.shared_len,
            names: std::mem::take(&mut self.local_names),
            ranks: std::mem::take(&mut self.local_ranks),
            by_name: std::mem::take(&mut self.local_by_name),
        };
        self.shared_len += seg.len();
        self.segments.push(Arc::new(seg));
    }

    /// Interns every symbol of `other` into this table (in `other`'s id
    /// order) and returns the id map: `map[old.index()]` is the id here.
    ///
    /// Fails on a rank conflict; symbols interned before the conflict remain.
    pub fn absorb(&mut self, other: &SymbolTable) -> Result<Vec<TermId>> {
        let mut map = Vec::with_capacity(other.len());
        for (_, name, rank) in other.iter() {
            map.push(self.intern(name, rank)?);
        }
        Ok(map)
    }

    /// Number of ids covered by immutable shared segments (a gap-free prefix
    /// of the id space). Ids below this bound mean the same label in every
    /// table sharing the segments; local ids above it are private.
    pub fn shared_len(&self) -> usize {
        self.shared_len as usize
    }

    // ----- resident-size accounting -----

    /// Estimated resident heap bytes of the whole table, counting shared
    /// segments as if privately owned. See [`SymbolTable::shared_segments`]
    /// for deduplicated accounting across tables.
    pub fn heap_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|seg| seg.heap_bytes())
            .sum::<usize>()
            + self.local_heap_bytes()
    }

    /// Estimated resident heap bytes of the private local tail only.
    pub fn local_heap_bytes(&self) -> usize {
        symbol_heap_bytes(&self.local_names)
    }

    /// Estimated resident heap bytes one interned symbol contributes — what
    /// a table holding just this symbol privately would spend on it.
    pub fn symbol_heap_bytes(&self, id: TermId) -> usize {
        one_symbol_heap_bytes(self.name(id).len())
    }

    /// The shared segments as `(identity, bytes)` pairs, where `identity` is
    /// stable for one resident allocation (the `Arc` pointer). A holder of
    /// many tables sums each identity once to get the true resident total.
    pub fn shared_segments(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.segments
            .iter()
            .map(|seg| (Arc::as_ptr(seg) as usize, seg.heap_bytes()))
    }

    // ----- sealed-segment images (checkpoint serialization seam) -----

    /// The sealed segments as `(names, ranks)` runs in id order — the
    /// serializable image of the shared prefix. Together with
    /// [`SymbolTable::from_sealed_segments`] this round-trips a fully sealed
    /// table (segment boundaries included) without re-interning.
    pub fn sealed_segment_runs(&self) -> impl Iterator<Item = (&[String], &[usize])> + '_ {
        self.segments
            .iter()
            .map(|seg| (seg.names.as_slice(), seg.ranks.as_slice()))
    }

    /// Rebuilds a fully sealed table from segment runs (the output shape of
    /// [`SymbolTable::sealed_segment_runs`]): ids are assigned sequentially
    /// across the runs and each run becomes one immutable shared segment, so
    /// segment boundaries — and therefore every derived table's
    /// [`SymbolTable::shared_len`] — survive the round trip. The per-segment
    /// name index is built in one pass; nothing is re-interned against an
    /// existing table. Rejects duplicate names (within or across runs): the
    /// image of a real table never contains any, so a duplicate means the
    /// image is corrupt and lookups would silently resolve to the wrong id.
    pub fn from_sealed_segments(runs: Vec<(Vec<String>, Vec<usize>)>) -> Result<Self> {
        let mut seen: HashMap<&str, ()> = HashMap::new();
        let mut segments = Vec::with_capacity(runs.len());
        let mut start = 0u32;
        for (names, ranks) in &runs {
            if names.len() != ranks.len() {
                return Err(GrammarError::Decode {
                    offset: 0,
                    detail: format!(
                        "segment run has {} names but {} ranks",
                        names.len(),
                        ranks.len()
                    ),
                });
            }
            let mut by_name = HashMap::with_capacity(names.len());
            for (i, name) in names.iter().enumerate() {
                if by_name
                    .insert(name.clone(), TermId(start + i as u32))
                    .is_some()
                    || seen.contains_key(name.as_str())
                {
                    return Err(GrammarError::Decode {
                        offset: 0,
                        detail: format!("duplicate symbol `{name}` in segment image"),
                    });
                }
            }
            for name in names {
                // Borrow from `runs` (outlives the loop) for the cross-run check.
                seen.insert(name.as_str(), ());
            }
            segments.push((start, by_name));
            start += names.len() as u32;
        }
        let segments = runs
            .into_iter()
            .zip(segments)
            .map(|((names, ranks), (start, by_name))| {
                Arc::new(Segment {
                    start,
                    names,
                    ranks,
                    by_name,
                })
            })
            .collect();
        Ok(SymbolTable {
            segments,
            shared_len: start,
            local_names: Vec::new(),
            local_ranks: Vec::new(),
            local_by_name: HashMap::new(),
        })
    }

    /// A table sharing this table's sealed segments covering exactly the ids
    /// below `len` — the zero-copy reconstruction of a document table whose
    /// shared prefix is a prefix of this (master) table. The returned table
    /// shares the segment `Arc`s (no strings are copied) and has an empty
    /// local tail. Errors unless `len` falls on a segment boundary within
    /// the sealed prefix, which is how a corrupt recorded prefix length
    /// surfaces as a typed error instead of a wrong alphabet.
    pub fn shared_prefix(&self, len: usize) -> Result<Self> {
        let len = u32::try_from(len).map_err(|_| GrammarError::Decode {
            offset: 0,
            detail: format!("shared prefix length {len} overflows the id space"),
        })?;
        let mut segments = Vec::new();
        let mut covered = 0u32;
        for seg in &self.segments {
            if covered == len {
                break;
            }
            segments.push(seg.clone());
            covered += seg.len();
        }
        if covered != len {
            return Err(GrammarError::Decode {
                offset: 0,
                detail: format!(
                    "shared prefix length {len} is not a segment boundary \
                     (sealed prefix covers {covered} of {} ids)",
                    self.shared_len
                ),
            });
        }
        Ok(SymbolTable {
            segments,
            shared_len: len,
            local_names: Vec::new(),
            local_ranks: Vec::new(),
            local_by_name: HashMap::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("a", 2).unwrap();
        let a2 = t.intern("a", 2).unwrap();
        assert_eq!(a, a2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.rank(a), 2);
    }

    #[test]
    fn rank_conflict_is_rejected() {
        let mut t = SymbolTable::new();
        t.intern("a", 2).unwrap();
        let err = t.intern("a", 3).unwrap_err();
        assert!(matches!(err, GrammarError::RankMismatch { .. }));
    }

    #[test]
    fn null_symbol_has_rank_zero() {
        let mut t = SymbolTable::new();
        let null = t.null();
        assert!(t.is_null(null));
        assert_eq!(t.rank(null), 0);
        assert_eq!(t.null(), null);
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.get("a").is_none());
        let a = t.intern("a", 0).unwrap();
        assert_eq!(t.get("a"), Some(a));
    }

    #[test]
    fn iter_lists_all_symbols() {
        let mut t = SymbolTable::new();
        t.intern("a", 2).unwrap();
        t.intern("b", 0).unwrap();
        let all: Vec<_> = t.iter().map(|(_, n, r)| (n.to_string(), r)).collect();
        assert_eq!(all, vec![("a".to_string(), 2), ("b".to_string(), 0)]);
    }

    #[test]
    fn sealing_preserves_ids_names_and_lookups() {
        let mut t = SymbolTable::new();
        let a = t.intern("a", 2).unwrap();
        let null = t.null();
        t.seal();
        assert_eq!(t.shared_len(), 2);
        let b = t.intern("b", 2).unwrap();
        t.seal();
        let c = t.intern("c", 0).unwrap();
        assert_eq!(
            (a, null, b, c),
            (TermId(0), TermId(1), TermId(2), TermId(3))
        );
        assert_eq!(t.name(a), "a");
        assert_eq!(t.name(b), "b");
        assert_eq!(t.name(c), "c");
        assert_eq!(t.rank(b), 2);
        assert!(t.is_null(null));
        assert_eq!(t.get("b"), Some(b));
        assert_eq!(t.get("c"), Some(c));
        assert_eq!(t.intern("a", 2).unwrap(), a, "re-intern hits the segment");
        let all: Vec<_> = t.iter().map(|(id, n, _)| (id, n.to_string())).collect();
        assert_eq!(
            all,
            vec![
                (a, "a".to_string()),
                (null, "#".to_string()),
                (b, "b".to_string()),
                (c, "c".to_string())
            ]
        );
        // Sealing twice without new symbols is a no-op.
        t.seal();
        t.seal();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn clones_share_sealed_segments_but_not_local_tails() {
        let mut master = SymbolTable::new();
        master.intern("shared", 2).unwrap();
        master.null();
        master.seal();
        let mut doc1 = master.clone();
        let mut doc2 = master.clone();
        let x1 = doc1.intern("only1", 2).unwrap();
        let x2 = doc2.intern("only2", 2).unwrap();
        // Same local id, different labels — local ids are private.
        assert_eq!(x1, x2);
        assert_eq!(doc1.name(x1), "only1");
        assert_eq!(doc2.name(x2), "only2");
        assert!(master.get("only1").is_none());
        // The sealed segment is one resident allocation across all three.
        let keys = |t: &SymbolTable| t.shared_segments().map(|(k, _)| k).collect::<Vec<_>>();
        assert_eq!(keys(&master), keys(&doc1));
        assert_eq!(keys(&master), keys(&doc2));
        // Shared accounting: full bytes exceed the deduplicated local tails.
        assert!(doc1.heap_bytes() > doc1.local_heap_bytes());
    }

    #[test]
    fn absorb_returns_the_id_remapping() {
        let mut a = SymbolTable::new();
        a.intern("x", 2).unwrap();
        a.intern("y", 2).unwrap();
        let mut b = SymbolTable::new();
        b.intern("y", 2).unwrap(); // different order
        b.intern("z", 0).unwrap();
        b.intern("x", 2).unwrap();
        let map = a.absorb(&b).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(a.name(map[0]), "y");
        assert_eq!(a.name(map[1]), "z");
        assert_eq!(a.name(map[2]), "x");
        assert_eq!(map[2], TermId(0), "existing symbols keep their ids");
        // Rank conflicts abort.
        let mut c = SymbolTable::new();
        c.intern("x", 3).unwrap();
        assert!(a.absorb(&c).is_err());
    }
}
