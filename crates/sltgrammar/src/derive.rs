//! Derivation: materializing `val_G(S)` and derived-size computations.

use std::collections::HashMap;

use crate::error::{GrammarError, Result};
use crate::fingerprint::{summaries, RuleSummary};
use crate::grammar::Grammar;
use crate::node::{NodeId, NodeKind};
use crate::rhs::RhsTree;
use crate::symbol::NtId;

/// Default node limit for [`val`]; grammars deriving larger trees must use
/// [`val_limited`] explicitly.
pub const DEFAULT_VAL_LIMIT: u64 = 50_000_000;

/// Per-rule number of nodes `val(A)` contributes on its own (excluding the
/// trees substituted for its parameters) — the building block of the paper's
/// `size(A, i)` precomputation.
pub fn own_sizes(g: &Grammar) -> HashMap<NtId, u128> {
    summaries(g)
        .into_iter()
        .map(|(nt, s)| (nt, s.own_size))
        .collect()
}

/// Per-rule segment sizes `size(A, 0) .. size(A, k)` of the paper: the number of
/// nodes of `val(A)` appearing before `y1`, between consecutive parameters, and
/// after `yk` in preorder.
pub fn segment_sizes(g: &Grammar) -> HashMap<NtId, Vec<u128>> {
    let all: HashMap<NtId, RuleSummary> = summaries(g);
    all.into_iter()
        .map(|(nt, s)| {
            let rank = g.rule(nt).rank;
            (nt, s.segment_sizes(rank))
        })
        .collect()
}

/// For every node of `rhs`, the number of nodes of the derived tree rooted at
/// that node (nonterminal references contribute their full `own_size` plus their
/// argument subtrees; parameters contribute 0 because their content is supplied
/// by the caller).
pub fn subtree_derived_sizes(
    rhs: &RhsTree,
    own: &HashMap<NtId, u128>,
) -> HashMap<NodeId, u128> {
    let order = rhs.preorder();
    let mut out: HashMap<NodeId, u128> = HashMap::with_capacity(order.len());
    for &node in order.iter().rev() {
        let children_sum: u128 = rhs
            .children(node)
            .iter()
            .map(|c| out[c])
            .fold(0u128, |a, b| a.saturating_add(b));
        let size = match rhs.kind(node) {
            NodeKind::Term(_) => children_sum.saturating_add(1),
            NodeKind::Nt(b) => children_sum.saturating_add(own[&b]),
            NodeKind::Param(_) => 0,
        };
        out.insert(node, size);
    }
    out
}

/// Materializes the derived tree `val_G(S)` as a plain [`RhsTree`] containing
/// only terminal nodes, provided it does not exceed `limit` nodes.
pub fn val_limited(g: &Grammar, limit: u64) -> Result<RhsTree> {
    let size = crate::fingerprint::derived_size(g);
    if size > limit as u128 {
        return Err(GrammarError::DerivationTooLarge { limit });
    }
    let mut tree = g.rule(g.start()).rhs.clone();
    loop {
        let nts: Vec<NodeId> = tree
            .preorder()
            .into_iter()
            .filter(|&n| tree.kind(n).is_nt())
            .collect();
        if nts.is_empty() {
            break;
        }
        for node in nts {
            let callee = tree
                .kind(node)
                .as_nt()
                .expect("collected nodes are nonterminal references");
            let callee_rhs = g.rule(callee).rhs.clone();
            tree.inline_at(node, &callee_rhs);
        }
    }
    tree.compact();
    Ok(tree)
}

/// Materializes `val_G(S)` with the default limit of [`DEFAULT_VAL_LIMIT`] nodes.
pub fn val(g: &Grammar) -> Result<RhsTree> {
    val_limited(g, DEFAULT_VAL_LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::{fingerprint, label_code, Segment};
    use crate::text::parse_grammar;

    fn paper_grammar() -> Grammar {
        parse_grammar("S -> f(A(B,B),#)\nB -> A(#,#)\nA -> a(#, a(y1, y2))").unwrap()
    }

    #[test]
    fn val_materializes_the_paper_example() {
        let g = paper_grammar();
        let t = val(&g).unwrap();
        assert_eq!(t.node_count(), 15);
        // No nonterminals or parameters remain.
        assert!(t
            .preorder()
            .iter()
            .all(|&n| t.kind(n).is_term()));
        // The preorder hash of the materialized tree equals the grammar fingerprint.
        let mut seg = Segment::empty();
        for n in t.preorder() {
            let term = t.kind(n).as_term().unwrap();
            seg.push_label(label_code(g.symbols.name(term)));
        }
        let fp = fingerprint(&g);
        assert_eq!(seg.hash, fp.hash);
        assert_eq!(seg.len, fp.size);
    }

    #[test]
    fn val_respects_the_limit() {
        let mut text = String::from("S -> f(A1,#)\n");
        for i in 1..30 {
            text.push_str(&format!("A{i} -> g(A{},A{})\n", i + 1, i + 1));
        }
        text.push_str("A30 -> a");
        let g = parse_grammar(&text).unwrap();
        let err = val_limited(&g, 1_000).unwrap_err();
        assert!(matches!(err, GrammarError::DerivationTooLarge { .. }));
    }

    #[test]
    fn own_sizes_and_subtree_sizes_are_consistent() {
        let g = paper_grammar();
        let own = own_sizes(&g);
        let a = g.nt_by_name("A").unwrap();
        let b = g.nt_by_name("B").unwrap();
        assert_eq!(own[&a], 3); // a, #, a — parameters excluded
        assert_eq!(own[&b], 5); // A(#,#) derives a(#, a(#, #))
        assert_eq!(own[&g.start()], 15);

        let start_rhs = &g.rule(g.start()).rhs;
        let sizes = subtree_derived_sizes(start_rhs, &own);
        assert_eq!(sizes[&start_rhs.root()], 15);
    }

    #[test]
    fn segment_sizes_for_paper_running_example() {
        let g = paper_grammar();
        let a = g.nt_by_name("A").unwrap();
        let sizes = segment_sizes(&g);
        // val(A) = a(#, a(y1, y2)): before y1 -> a,#,a = 3 nodes; between y1,y2 -> 0; after -> 0.
        assert_eq!(sizes[&a], vec![3, 0, 0]);
    }
}
