//! The SLCF tree grammar type and whole-grammar operations.

use std::collections::{HashMap, HashSet};

use crate::error::{GrammarError, Result};
use crate::node::{NodeId, NodeKind};
use crate::rhs::RhsTree;
use crate::symbol::{NtId, SymbolTable, TermId};

/// One grammar rule `A → t_A`.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Human-readable name of the nonterminal (unique within the grammar).
    pub name: String,
    /// Rank of the nonterminal, i.e. the number of formal parameters of the rule.
    pub rank: usize,
    /// The right-hand side tree over terminals, nonterminals and parameters.
    pub rhs: RhsTree,
}

/// A straight-line linear context-free (SLCF) tree grammar.
///
/// The grammar owns a [`SymbolTable`] of ranked terminals and a set of rules
/// indexed by [`NtId`]. Exactly one rule is the start rule; it has rank 0 and is
/// never referenced by other rules. The grammar must be non-recursive
/// (*straight-line*), which [`Grammar::validate`] checks.
///
/// Rule bodies are only ever mutated through [`RhsTree`] operations, each of
/// which bumps the body's [`RhsTree::version`]; "which rules changed since I
/// last looked" is therefore answerable per rule in O(1), which is what keeps
/// the incremental occurrence index honest across splices.
#[derive(Debug, Clone)]
pub struct Grammar {
    /// Terminal alphabet.
    pub symbols: SymbolTable,
    rules: Vec<Option<Rule>>,
    names: HashMap<String, NtId>,
    start: NtId,
    fresh_counter: u64,
}

impl Grammar {
    /// Creates a grammar whose start rule `S` has the given right-hand side.
    pub fn new(symbols: SymbolTable, start_rhs: RhsTree) -> Self {
        let mut g = Grammar {
            symbols,
            rules: Vec::new(),
            names: HashMap::new(),
            start: NtId(0),
            fresh_counter: 0,
        };
        let start = g.add_rule("S", 0, start_rhs);
        g.start = start;
        g
    }

    /// Adds a rule with the given name, rank and right-hand side.
    ///
    /// If the name is already taken, a fresh suffix is appended.
    pub fn add_rule(&mut self, name: &str, rank: usize, rhs: RhsTree) -> NtId {
        let id = NtId(self.rules.len() as u32);
        let mut unique = name.to_string();
        while self.names.contains_key(&unique) {
            self.fresh_counter += 1;
            unique = format!("{name}_{}", self.fresh_counter);
        }
        self.names.insert(unique.clone(), id);
        self.rules.push(Some(Rule {
            name: unique,
            rank,
            rhs,
        }));
        id
    }

    /// Adds a rule with a freshly generated name starting with `prefix`.
    pub fn add_rule_fresh(&mut self, prefix: &str, rank: usize, rhs: RhsTree) -> NtId {
        self.fresh_counter += 1;
        let name = format!("{prefix}{}", self.fresh_counter);
        self.add_rule(&name, rank, rhs)
    }

    /// Renames a rule, keeping the name index consistent. If the new name is
    /// taken, a unique suffix is appended. Returns the name actually used.
    pub fn rename_rule(&mut self, nt: NtId, new_name: &str) -> String {
        let old = self.rule(nt).name.clone();
        self.names.remove(&old);
        let mut unique = new_name.to_string();
        while self.names.contains_key(&unique) {
            self.fresh_counter += 1;
            unique = format!("{new_name}_{}", self.fresh_counter);
        }
        self.names.insert(unique.clone(), nt);
        self.rule_mut(nt).name = unique.clone();
        unique
    }

    /// Removes a rule. The caller must ensure no live references to it remain.
    pub fn remove_rule(&mut self, nt: NtId) {
        if let Some(rule) = self.rules[nt.index()].take() {
            self.names.remove(&rule.name);
        }
    }

    /// Whether the rule still exists.
    pub fn has_rule(&self, nt: NtId) -> bool {
        self.rules
            .get(nt.index())
            .map(|r| r.is_some())
            .unwrap_or(false)
    }

    /// The rule for `nt`. Panics if the rule was removed.
    pub fn rule(&self, nt: NtId) -> &Rule {
        self.rules[nt.index()]
            .as_ref()
            .expect("rule exists (not removed)")
    }

    /// Mutable access to a rule. Panics if the rule was removed.
    pub fn rule_mut(&mut self, nt: NtId) -> &mut Rule {
        self.rules[nt.index()]
            .as_mut()
            .expect("rule exists (not removed)")
    }

    /// The rule for `nt`, or `None` if removed.
    pub fn try_rule(&self, nt: NtId) -> Option<&Rule> {
        self.rules.get(nt.index()).and_then(|r| r.as_ref())
    }

    /// The start nonterminal.
    pub fn start(&self) -> NtId {
        self.start
    }

    /// Looks up a nonterminal by name.
    pub fn nt_by_name(&self, name: &str) -> Option<NtId> {
        self.names.get(name).copied()
    }

    /// All live nonterminal ids (start included), in id order.
    pub fn nonterminals(&self) -> Vec<NtId> {
        (0..self.rules.len() as u32)
            .map(NtId)
            .filter(|&nt| self.has_rule(nt))
            .collect()
    }

    /// Number of live rules.
    pub fn rule_count(&self) -> usize {
        self.rules.iter().filter(|r| r.is_some()).count()
    }

    /// Total number of nodes over all rule right-hand sides.
    pub fn node_count(&self) -> usize {
        self.nonterminals()
            .iter()
            .map(|&nt| self.rule(nt).rhs.node_count())
            .sum()
    }

    /// Total number of edges over all rule right-hand sides — the paper's
    /// grammar size measure ("c-edges").
    pub fn edge_count(&self) -> usize {
        self.nonterminals()
            .iter()
            .map(|&nt| self.rule(nt).rhs.edge_count())
            .sum()
    }

    /// For every nonterminal `Q`, the list of nodes `(R, v)` such that node `v`
    /// in the right-hand side of `R` is labelled `Q` — the paper's `ref_G(Q)`.
    pub fn refs(&self) -> HashMap<NtId, Vec<(NtId, NodeId)>> {
        let mut out: HashMap<NtId, Vec<(NtId, NodeId)>> = HashMap::new();
        for nt in self.nonterminals() {
            out.entry(nt).or_default();
        }
        for caller in self.nonterminals() {
            let rhs = &self.rule(caller).rhs;
            for node in rhs.preorder() {
                if let NodeKind::Nt(callee) = rhs.kind(node) {
                    out.entry(callee).or_default().push((caller, node));
                }
            }
        }
        out
    }

    /// Number of references of each nonterminal.
    pub fn ref_counts(&self) -> HashMap<NtId, usize> {
        self.refs()
            .into_iter()
            .map(|(nt, v)| (nt, v.len()))
            .collect()
    }

    /// The paper's `usage_G(Q)`: how many times `Q` is used when deriving the
    /// tree `val_G(S)`. Saturating at `u64::MAX`.
    pub fn usage(&self) -> HashMap<NtId, u64> {
        let order = self
            .anti_sl_order()
            .expect("usage requires a straight-line grammar");
        let refs = self.refs();
        let mut usage: HashMap<NtId, u64> = HashMap::new();
        usage.insert(self.start, 1);
        // Process callers before callees: reverse anti-SL order.
        for &nt in order.iter().rev() {
            if nt == self.start {
                continue;
            }
            let mut u: u64 = 0;
            for &(caller, _) in refs.get(&nt).map(|v| v.as_slice()).unwrap_or(&[]) {
                let cu = usage.get(&caller).copied().unwrap_or(0);
                u = u.saturating_add(cu);
            }
            usage.insert(nt, u);
        }
        usage
    }

    /// Returns the nonterminals in *anti-straight-line* order: every rule comes
    /// before all rules that (directly or indirectly) call it, i.e. callees
    /// first, callers last, the start rule at the very end.
    ///
    /// Fails with [`GrammarError::NotStraightLine`] if the call graph is cyclic.
    pub fn anti_sl_order(&self) -> Result<Vec<NtId>> {
        // Kahn's algorithm on edges caller -> callee; output callees first.
        let nts = self.nonterminals();
        let mut callees: HashMap<NtId, HashSet<NtId>> = HashMap::new();
        let mut callers: HashMap<NtId, HashSet<NtId>> = HashMap::new();
        for &nt in &nts {
            callees.entry(nt).or_default();
            callers.entry(nt).or_default();
        }
        for &caller in &nts {
            let rhs = &self.rule(caller).rhs;
            for node in rhs.preorder() {
                if let NodeKind::Nt(callee) = rhs.kind(node) {
                    if caller == callee {
                        return Err(GrammarError::NotStraightLine {
                            nonterminal: self.rule(caller).name.clone(),
                        });
                    }
                    callees.entry(caller).or_default().insert(callee);
                    callers.entry(callee).or_default().insert(caller);
                }
            }
        }
        // Start with rules that call nothing.
        let mut remaining_out: HashMap<NtId, usize> =
            nts.iter().map(|&nt| (nt, callees[&nt].len())).collect();
        let mut queue: Vec<NtId> = nts
            .iter()
            .copied()
            .filter(|nt| remaining_out[nt] == 0)
            .collect();
        queue.sort();
        let mut order = Vec::with_capacity(nts.len());
        let mut qi = 0;
        while qi < queue.len() {
            let nt = queue[qi];
            qi += 1;
            order.push(nt);
            let mut released: Vec<NtId> = Vec::new();
            for &caller in &callers[&nt] {
                let c = remaining_out.get_mut(&caller).expect("caller present");
                *c -= 1;
                if *c == 0 {
                    released.push(caller);
                }
            }
            released.sort();
            queue.extend(released);
        }
        if order.len() != nts.len() {
            let on_cycle = nts
                .iter()
                .find(|nt| !order.contains(nt))
                .expect("cycle implies a missing nonterminal");
            return Err(GrammarError::NotStraightLine {
                nonterminal: self.rule(*on_cycle).name.clone(),
            });
        }
        Ok(order)
    }

    /// Inlines the rule referenced by `node` (which must be a nonterminal node
    /// in `caller`'s right-hand side) at that node. Returns the root of the
    /// inlined copy. The callee rule itself is left untouched.
    ///
    /// Like every splice, the change reports itself through the caller's
    /// [`RhsTree::version`] counter — incremental consumers (the occurrence
    /// index, prune's size cache) detect it without explicit notification.
    pub fn inline_at(&mut self, caller: NtId, node: NodeId) -> NodeId {
        let callee = self
            .rule(caller)
            .rhs
            .kind(node)
            .as_nt()
            .expect("inline target must be a nonterminal node");
        let callee_rhs = self.rule(callee).rhs.clone();
        self.rule_mut(caller).rhs.inline_at(node, &callee_rhs)
    }

    /// Inlines `nt` at every reference and removes its rule.
    pub fn inline_everywhere_and_remove(&mut self, nt: NtId) {
        assert_ne!(nt, self.start, "cannot remove the start rule");
        let refs = self.refs();
        if let Some(sites) = refs.get(&nt) {
            let callee_rhs = self.rule(nt).rhs.clone();
            for &(caller, node) in sites {
                self.rule_mut(caller).rhs.inline_at(node, &callee_rhs);
            }
        }
        self.remove_rule(nt);
    }

    /// Rewrites every terminal node through `map` (`map[old.index()]` is the
    /// replacement id), the grammar half of rebasing a document onto a shared
    /// [`SymbolTable`] (see [`SymbolTable::absorb`]). Returns the number of
    /// nodes relabelled; when the map is the identity nothing is touched and
    /// no [`RhsTree::version`] counter moves, so cached navigation survives.
    ///
    /// The caller is responsible for installing a table that actually defines
    /// the mapped ids (typically a clone of the table `map` came from).
    pub fn relabel_terms(&mut self, map: &[TermId]) -> usize {
        if map.iter().enumerate().all(|(i, t)| t.index() == i) {
            return 0;
        }
        let mut relabelled = 0;
        for nt in self.nonterminals() {
            let rhs = &self.rule(nt).rhs;
            let changes: Vec<(NodeId, TermId)> = rhs
                .preorder()
                .into_iter()
                .filter_map(|node| match rhs.kind(node) {
                    NodeKind::Term(t) if map[t.index()] != t => Some((node, map[t.index()])),
                    _ => None,
                })
                .collect();
            relabelled += changes.len();
            let rhs = &mut self.rule_mut(nt).rhs;
            for (node, term) in changes {
                rhs.set_kind(node, NodeKind::Term(term));
            }
        }
        relabelled
    }

    /// Removes rules unreachable from the start rule. Returns how many were removed.
    pub fn gc(&mut self) -> usize {
        let mut reachable: HashSet<NtId> = HashSet::new();
        let mut stack = vec![self.start];
        while let Some(nt) = stack.pop() {
            if !reachable.insert(nt) {
                continue;
            }
            let rhs = &self.rule(nt).rhs;
            for node in rhs.preorder() {
                if let NodeKind::Nt(callee) = rhs.kind(node) {
                    if !reachable.contains(&callee) {
                        stack.push(callee);
                    }
                }
            }
        }
        let mut removed = 0;
        for nt in self.nonterminals() {
            if !reachable.contains(&nt) {
                self.remove_rule(nt);
                removed += 1;
            }
        }
        removed
    }

    /// Compacts all rule arenas, dropping garbage nodes. Invalidates node ids.
    pub fn compact(&mut self) {
        for nt in self.nonterminals() {
            self.rule_mut(nt).rhs.compact();
        }
    }

    /// Validates the grammar:
    /// * every node's child count matches its label rank,
    /// * every rule uses parameters `y1..yk` exactly once each,
    /// * no right-hand side is a single parameter node,
    /// * every referenced nonterminal has a rule and is called with `rank` arguments,
    /// * the start rule has rank 0 and is not referenced,
    /// * the grammar is straight-line.
    pub fn validate(&self) -> Result<()> {
        let refs = self.refs();
        if self.rule(self.start).rank != 0 {
            return Err(GrammarError::BadStartRule {
                detail: "start rule must have rank 0".to_string(),
            });
        }
        if !refs
            .get(&self.start)
            .map(|v| v.is_empty())
            .unwrap_or(true)
        {
            return Err(GrammarError::BadStartRule {
                detail: "start rule must not be referenced by any rule".to_string(),
            });
        }
        for nt in self.nonterminals() {
            let rule = self.rule(nt);
            let rhs = &rule.rhs;
            if rhs.node_count() == 1 && rhs.kind(rhs.root()).is_param() {
                return Err(GrammarError::SingleParameterRhs {
                    rule: rule.name.clone(),
                });
            }
            let mut seen_params: HashMap<u32, usize> = HashMap::new();
            for node in rhs.preorder() {
                let nchildren = rhs.children(node).len();
                match rhs.kind(node) {
                    NodeKind::Term(t) => {
                        let want = self.symbols.rank(t);
                        if nchildren != want {
                            return Err(GrammarError::ArityMismatch {
                                node: format!(
                                    "terminal `{}` in rule `{}`",
                                    self.symbols.name(t),
                                    rule.name
                                ),
                                expected: want,
                                found: nchildren,
                            });
                        }
                    }
                    NodeKind::Nt(callee) => {
                        let callee_rule = self.try_rule(callee).ok_or_else(|| {
                            GrammarError::MissingRule {
                                nonterminal: format!("nt#{}", callee.0),
                            }
                        })?;
                        if nchildren != callee_rule.rank {
                            return Err(GrammarError::ArityMismatch {
                                node: format!(
                                    "nonterminal `{}` referenced in rule `{}`",
                                    callee_rule.name, rule.name
                                ),
                                expected: callee_rule.rank,
                                found: nchildren,
                            });
                        }
                    }
                    NodeKind::Param(i) => {
                        if nchildren != 0 {
                            return Err(GrammarError::ArityMismatch {
                                node: format!("parameter y{} in rule `{}`", i + 1, rule.name),
                                expected: 0,
                                found: nchildren,
                            });
                        }
                        *seen_params.entry(i).or_insert(0) += 1;
                    }
                }
            }
            for i in 0..rule.rank as u32 {
                match seen_params.get(&i) {
                    Some(1) => {}
                    Some(n) => {
                        return Err(GrammarError::BadParameters {
                            rule: rule.name.clone(),
                            detail: format!("parameter y{} occurs {n} times", i + 1),
                        })
                    }
                    None => {
                        return Err(GrammarError::BadParameters {
                            rule: rule.name.clone(),
                            detail: format!("parameter y{} does not occur", i + 1),
                        })
                    }
                }
            }
            if seen_params.keys().any(|&i| i as usize >= rule.rank) {
                return Err(GrammarError::BadParameters {
                    rule: rule.name.clone(),
                    detail: "parameter index exceeds rule rank".to_string(),
                });
            }
        }
        self.anti_sl_order()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse_grammar;

    fn sample() -> Grammar {
        // The grammar from the paper's preliminaries:
        // S -> f(A(B,B),#), B -> A(#,#), A -> a(#, a(y1, y2))
        parse_grammar(
            "S -> f(A(B,B),#)\n\
             B -> A(#,#)\n\
             A -> a(#, a(y1, y2))",
        )
        .unwrap()
    }

    #[test]
    fn paper_example_parses_and_validates() {
        let g = sample();
        g.validate().unwrap();
        assert_eq!(g.rule_count(), 3);
        let s = g.start();
        assert_eq!(g.rule(s).name, "S");
        assert_eq!(g.rule(s).rank, 0);
    }

    #[test]
    fn refs_and_usage_match_paper_definitions() {
        let g = sample();
        let a = g.nt_by_name("A").unwrap();
        let b = g.nt_by_name("B").unwrap();
        let refs = g.refs();
        // A is referenced once in S and once in B.
        assert_eq!(refs[&a].len(), 2);
        // B is referenced twice in S.
        assert_eq!(refs[&b].len(), 2);
        let usage = g.usage();
        assert_eq!(usage[&g.start()], 1);
        assert_eq!(usage[&b], 2);
        // usage(A) = usage(S) * 1 + usage(B) * 1 = 1 + 2 = 3.
        assert_eq!(usage[&a], 3);
    }

    #[test]
    fn anti_sl_order_puts_callees_first() {
        let g = sample();
        let order = g.anti_sl_order().unwrap();
        let pos = |name: &str| {
            let nt = g.nt_by_name(name).unwrap();
            order.iter().position(|&x| x == nt).unwrap()
        };
        assert!(pos("A") < pos("B"));
        assert!(pos("B") < pos("S"));
        assert!(pos("A") < pos("S"));
    }

    #[test]
    fn recursive_grammar_is_rejected() {
        let err = parse_grammar("S -> f(A,#)\nA -> g(A)").unwrap_err();
        assert!(matches!(err, GrammarError::NotStraightLine { .. }));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        // `a` used with 2 children in one place and 1 child in another cannot
        // even be interned; simulate by parsing, which reports a rank mismatch.
        let err = parse_grammar("S -> a(a(#,#))").unwrap_err();
        assert!(matches!(err, GrammarError::RankMismatch { .. }));
    }

    #[test]
    fn missing_parameter_is_rejected() {
        let err = parse_grammar("S -> f(A(#,#),#)\nA -> g(y2)").unwrap_err();
        assert!(matches!(err, GrammarError::BadParameters { .. }));
    }

    #[test]
    fn call_arity_mismatch_is_rejected() {
        let err = parse_grammar("S -> f(A(#),#)\nA -> g(y1,y2)").unwrap_err();
        assert!(matches!(err, GrammarError::ArityMismatch { .. }));
    }

    #[test]
    fn inline_at_preserves_derived_tree() {
        let mut g = sample();
        let before = crate::fingerprint::fingerprint(&g);
        // Inline B at its first reference in S (the paper's example yields
        // S -> f(A(A(#,#), B), #)).
        let b = g.nt_by_name("B").unwrap();
        let refs = g.refs();
        let &(caller, node) = refs[&b].first().unwrap();
        g.inline_at(caller, node);
        g.validate().unwrap();
        let after = crate::fingerprint::fingerprint(&g);
        assert_eq!(before, after);
    }

    #[test]
    fn inline_everywhere_and_remove_then_gc() {
        let mut g = sample();
        let before = crate::fingerprint::fingerprint(&g);
        let b = g.nt_by_name("B").unwrap();
        g.inline_everywhere_and_remove(b);
        assert_eq!(g.rule_count(), 2);
        g.validate().unwrap();
        assert_eq!(before, crate::fingerprint::fingerprint(&g));
        // Nothing unreachable to collect.
        assert_eq!(g.gc(), 0);
    }

    #[test]
    fn gc_removes_unreachable_rules() {
        let mut g = sample();
        let rhs = RhsTree::singleton(NodeKind::Term(g.symbols.null()));
        let root = rhs.root();
        let _ = root;
        g.add_rule("Orphan", 0, rhs);
        assert_eq!(g.rule_count(), 4);
        assert_eq!(g.gc(), 1);
        assert_eq!(g.rule_count(), 3);
    }

    #[test]
    fn edge_count_matches_paper_size_measure() {
        let g = sample();
        // S rhs: f,A,B,B,# = 5 nodes -> 4 edges; B rhs: A,#,# = 3 nodes -> 2 edges;
        // A rhs: a,#,a,y1,y2 = 5 nodes -> 4 edges. Total 10.
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.node_count(), 13);
    }

    #[test]
    fn add_rule_deduplicates_names() {
        let mut g = sample();
        let rhs = RhsTree::singleton(NodeKind::Term(g.symbols.null()));
        let id = g.add_rule("A", 0, rhs);
        assert_ne!(g.rule(id).name, "A");
        assert!(g.nt_by_name(&g.rule(id).name.clone()).is_some());
    }
}
