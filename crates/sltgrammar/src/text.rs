//! Textual grammar format: parsing and printing.
//!
//! The format is one rule per line, the first rule being the start rule:
//!
//! ```text
//! S -> f(A(B,B),#)
//! B -> A(#,#)
//! A -> a(#, a(y1, y2))
//! ```
//!
//! Identifiers that appear on the left of `->` are nonterminals; `y1`, `y2`, …
//! are parameters; `#` is the null symbol `⊥`; everything else is a terminal
//! whose rank is inferred from its first use and checked on later uses. Lines
//! starting with `//` and blank lines are ignored.

use std::fmt;

use crate::error::{GrammarError, Result};
use crate::grammar::Grammar;
use crate::node::{NodeId, NodeKind};
use crate::rhs::RhsTree;
use crate::symbol::{NtId, SymbolTable};

/// Intermediate parse tree.
#[derive(Debug)]
struct PExpr {
    name: String,
    children: Vec<PExpr>,
}

struct Tokenizer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

#[derive(Debug, PartialEq, Eq, Clone)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    Comma,
    End,
}

impl<'a> Tokenizer<'a> {
    fn new(src: &'a str, line: usize) -> Self {
        Tokenizer {
            src: src.as_bytes(),
            pos: 0,
            line,
        }
    }

    fn next(&mut self) -> Result<Token> {
        while self.pos < self.src.len() && (self.src[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
        if self.pos >= self.src.len() {
            return Ok(Token::End);
        }
        let c = self.src[self.pos] as char;
        match c {
            '(' => {
                self.pos += 1;
                Ok(Token::LParen)
            }
            ')' => {
                self.pos += 1;
                Ok(Token::RParen)
            }
            ',' => {
                self.pos += 1;
                Ok(Token::Comma)
            }
            _ => {
                let start = self.pos;
                while self.pos < self.src.len() {
                    let ch = self.src[self.pos] as char;
                    if ch.is_whitespace() || ch == '(' || ch == ')' || ch == ',' {
                        break;
                    }
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(GrammarError::Parse {
                        line: self.line,
                        detail: format!("unexpected character `{c}`"),
                    });
                }
                Ok(Token::Ident(
                    String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
                ))
            }
        }
    }

    fn peek(&mut self) -> Result<Token> {
        let save = self.pos;
        let t = self.next()?;
        self.pos = save;
        Ok(t)
    }
}

fn parse_expr(tok: &mut Tokenizer<'_>) -> Result<PExpr> {
    let name = match tok.next()? {
        Token::Ident(s) => s,
        other => {
            return Err(GrammarError::Parse {
                line: tok.line,
                detail: format!("expected an identifier, found {other:?}"),
            })
        }
    };
    let mut children = Vec::new();
    if tok.peek()? == Token::LParen {
        tok.next()?; // consume '('
        if tok.peek()? == Token::RParen {
            tok.next()?;
        } else {
            loop {
                children.push(parse_expr(tok)?);
                match tok.next()? {
                    Token::Comma => continue,
                    Token::RParen => break,
                    other => {
                        return Err(GrammarError::Parse {
                            line: tok.line,
                            detail: format!("expected `,` or `)`, found {other:?}"),
                        })
                    }
                }
            }
        }
    }
    Ok(PExpr { name, children })
}

fn param_index(name: &str) -> Option<u32> {
    let rest = name.strip_prefix('y')?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let i: u32 = rest.parse().ok()?;
    if i == 0 {
        return None;
    }
    Some(i - 1)
}

fn build_rhs(
    pexpr: &PExpr,
    symbols: &mut SymbolTable,
    nt_ids: &dyn Fn(&str) -> Option<NtId>,
    line: usize,
) -> Result<RhsTree> {
    // Placeholder root replaced below; compacted away at the end.
    let mut tree = RhsTree::singleton(NodeKind::Param(u32::MAX));
    let root = build_node(pexpr, &mut tree, symbols, nt_ids, line)?;
    tree.set_root(root);
    tree.compact();
    Ok(tree)
}

fn build_node(
    pexpr: &PExpr,
    tree: &mut RhsTree,
    symbols: &mut SymbolTable,
    nt_ids: &dyn Fn(&str) -> Option<NtId>,
    line: usize,
) -> Result<NodeId> {
    let mut children = Vec::with_capacity(pexpr.children.len());
    for c in &pexpr.children {
        children.push(build_node(c, tree, symbols, nt_ids, line)?);
    }
    let kind = if let Some(nt) = nt_ids(&pexpr.name) {
        NodeKind::Nt(nt)
    } else if let Some(i) = param_index(&pexpr.name) {
        if !pexpr.children.is_empty() {
            return Err(GrammarError::Parse {
                line,
                detail: format!("parameter `{}` cannot have children", pexpr.name),
            });
        }
        NodeKind::Param(i)
    } else {
        NodeKind::Term(symbols.intern(&pexpr.name, pexpr.children.len())?)
    };
    Ok(tree.add_node(kind, children))
}

/// Parses a whole grammar from its textual representation.
pub fn parse_grammar(text: &str) -> Result<Grammar> {
    let mut lines: Vec<(usize, &str, &str)> = Vec::new(); // (line no, name, body)
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        let (name, body) = line.split_once("->").ok_or_else(|| GrammarError::Parse {
            line: i + 1,
            detail: "missing `->`".to_string(),
        })?;
        lines.push((i + 1, name.trim(), body.trim()));
    }
    if lines.is_empty() {
        return Err(GrammarError::Parse {
            line: 0,
            detail: "empty grammar".to_string(),
        });
    }
    // Assign nonterminal ids in order of appearance; the first rule is the start.
    let names: Vec<String> = lines.iter().map(|(_, n, _)| n.to_string()).collect();
    for (i, n) in names.iter().enumerate() {
        if names[..i].contains(n) {
            return Err(GrammarError::Parse {
                line: lines[i].0,
                detail: format!("duplicate rule `{n}`"),
            });
        }
    }

    let mut grammar2 = {
        let mut symbols = SymbolTable::new();
        let null = symbols.null();
        let placeholder = RhsTree::singleton(NodeKind::Term(null));
        Grammar::new(symbols, placeholder)
    };
    // NtId(0) is the start rule; rename it to the first rule's name and create
    // placeholder rules for the remaining names so bodies can reference them.
    let mut ids: Vec<NtId> = Vec::with_capacity(names.len());
    for (i, name) in names.iter().enumerate() {
        if i == 0 {
            // Rename the start rule.
            let start = grammar2.start();
            grammar2.rename_rule(start, name);
            ids.push(start);
        } else {
            let rhs = RhsTree::singleton(NodeKind::Term(
                grammar2.symbols.get("#").expect("null interned"),
            ));
            ids.push(grammar2.add_rule(name, 0, rhs));
        }
    }
    let name_to_id: std::collections::HashMap<String, NtId> = names
        .iter()
        .cloned()
        .zip(ids.iter().copied())
        .collect();

    for (idx, (line_no, _, body)) in lines.iter().enumerate() {
        let mut tok = Tokenizer::new(body, *line_no);
        let pexpr = parse_expr(&mut tok)?;
        if tok.next()? != Token::End {
            return Err(GrammarError::Parse {
                line: *line_no,
                detail: "trailing input after rule body".to_string(),
            });
        }
        let lookup = |n: &str| name_to_id.get(n).copied();
        let rhs = build_rhs(&pexpr, &mut grammar2.symbols, &lookup, *line_no)?;
        // Rank = number of distinct parameters used.
        let rank = rhs
            .param_nodes()
            .iter()
            .map(|(i, _)| *i + 1)
            .max()
            .unwrap_or(0) as usize;
        let nt = ids[idx];
        let rule = grammar2.rule_mut(nt);
        rule.rhs = rhs;
        rule.rank = rank;
    }
    grammar2.validate()?;
    Ok(grammar2)
}

/// Parses a single tree expression (terminals and parameters only, no
/// nonterminals) against the given symbol table.
pub fn parse_tree(symbols: &mut SymbolTable, text: &str) -> Result<RhsTree> {
    let mut tok = Tokenizer::new(text, 1);
    let pexpr = parse_expr(&mut tok)?;
    if tok.next()? != Token::End {
        return Err(GrammarError::Parse {
            line: 1,
            detail: "trailing input after tree".to_string(),
        });
    }
    let lookup = |_: &str| None;
    build_rhs(&pexpr, symbols, &lookup, 1)
}

fn write_node(
    g: &Grammar,
    rhs: &RhsTree,
    node: NodeId,
    out: &mut String,
) {
    // Iterative pretty-printer to cope with very deep right-hand sides.
    enum W {
        Open(NodeId),
        Text(&'static str),
    }
    let mut stack = vec![W::Open(node)];
    while let Some(w) = stack.pop() {
        match w {
            W::Text(s) => out.push_str(s),
            W::Open(n) => {
                match rhs.kind(n) {
                    NodeKind::Term(t) => out.push_str(g.symbols.name(t)),
                    NodeKind::Nt(nt) => out.push_str(&g.rule(nt).name),
                    NodeKind::Param(i) => out.push_str(&format!("y{}", i + 1)),
                }
                let children = rhs.children(n);
                if !children.is_empty() {
                    out.push('(');
                    stack.push(W::Text(")"));
                    for (i, &c) in children.iter().enumerate().rev() {
                        stack.push(W::Open(c));
                        if i > 0 {
                            stack.push(W::Text(","));
                        }
                    }
                }
            }
        }
    }
}

/// Prints a grammar in the textual format accepted by [`parse_grammar`].
pub fn print_grammar(g: &Grammar) -> String {
    let mut out = String::new();
    let mut order = vec![g.start()];
    for nt in g.nonterminals() {
        if nt != g.start() {
            order.push(nt);
        }
    }
    for nt in order {
        let rule = g.rule(nt);
        out.push_str(&rule.name);
        out.push_str(" -> ");
        write_node(g, &rule.rhs, rule.rhs.root(), &mut out);
        out.push('\n');
    }
    out
}

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print_grammar(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;

    #[test]
    fn roundtrip_parse_print_parse() {
        let text = "S -> f(A(B,B),#)\nB -> A(#,#)\nA -> a(#, a(y1, y2))";
        let g = parse_grammar(text).unwrap();
        let printed = print_grammar(&g);
        let g2 = parse_grammar(&printed).unwrap();
        assert_eq!(fingerprint(&g), fingerprint(&g2));
        assert_eq!(g.rule_count(), g2.rule_count());
        assert_eq!(g.edge_count(), g2.edge_count());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = parse_grammar("// the start rule\n\nS -> a(#,#)\n// done\n").unwrap();
        assert_eq!(g.rule_count(), 1);
    }

    #[test]
    fn missing_arrow_is_an_error() {
        let err = parse_grammar("S f(a)").unwrap_err();
        assert!(matches!(err, GrammarError::Parse { .. }));
    }

    #[test]
    fn duplicate_rule_names_are_rejected() {
        let err = parse_grammar("S -> a\nA -> b\nA -> c").unwrap_err();
        assert!(matches!(err, GrammarError::Parse { .. }));
    }

    #[test]
    fn parameters_cannot_have_children() {
        let err = parse_grammar("S -> f(A(#))\nA -> g(y1(#))").unwrap_err();
        assert!(matches!(err, GrammarError::Parse { .. }));
    }

    #[test]
    fn parse_tree_builds_plain_trees() {
        let mut symbols = SymbolTable::new();
        let t = parse_tree(&mut symbols, "f(a(#,#), b)").unwrap();
        assert_eq!(t.node_count(), 5);
        assert_eq!(symbols.rank(symbols.get("f").unwrap()), 2);
        assert_eq!(symbols.rank(symbols.get("b").unwrap()), 0);
    }

    #[test]
    fn y_prefixed_terminals_are_not_confused_with_parameters() {
        // `year` is a terminal, `y1` is a parameter.
        let g = parse_grammar("S -> f(A(year),#)\nA -> g(y1)").unwrap();
        assert!(g.symbols.get("year").is_some());
        assert!(g.symbols.get("y1").is_none());
    }

    #[test]
    fn display_is_parseable() {
        let g = parse_grammar("S -> f(a(#,#),#)").unwrap();
        let shown = format!("{g}");
        assert!(shown.contains("S -> "));
        parse_grammar(&shown).unwrap();
    }
}
