//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte slices.
//!
//! The persistent formats of this workspace — the `.sltg` grammar encoding
//! ([`crate::serialize`]) and the write-ahead log / checkpoint files of the
//! durable store — frame their payloads with this checksum so that torn
//! writes and bit rot are detected at decode time instead of surfacing as
//! corrupted grammars. The implementation is the standard reflected
//! table-driven one; the table is built at compile time.

/// The reflected CRC-32 lookup table for polynomial `0xEDB88320`.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (initial value `!0`, final complement — the common
/// "crc32" every zlib-compatible tool computes).
pub fn crc32(data: &[u8]) -> u32 {
    update(!0, data) ^ !0
}

/// Feeds `data` into a running (pre-complement) CRC state. Start from `!0`,
/// finish by XOR-ing with `!0`; `crc32(x)` is the one-shot form.
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    for &byte in data {
        state = (state >> 8) ^ TABLE[((state ^ byte as u32) & 0xFF) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let data = b"incremental checksum over several chunks";
        let mut state = !0u32;
        for chunk in data.chunks(7) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ !0, crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"some framed record payload";
        let reference = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() * 8 {
            copy[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&copy), reference, "bit flip {i} must change the CRC");
            copy[i / 8] ^= 1 << (i % 8);
        }
    }
}
