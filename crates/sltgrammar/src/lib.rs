//! # sltgrammar — straight-line linear context-free tree grammars
//!
//! This crate is the substrate for the reproduction of *Incremental Updates on
//! Compressed XML* (Böttcher, Hartel, Jacobs, Maneth; ICDE 2016). It provides:
//!
//! * a ranked terminal alphabet ([`SymbolTable`]),
//! * arena-based rule right-hand sides ([`RhsTree`]) with the splice operations
//!   the compression and update algorithms need (inlining, subtree replacement,
//!   fragment extraction),
//! * the [`Grammar`] type with reference/usage counts, anti-straight-line
//!   ordering, validation and garbage collection,
//! * derivation utilities ([`derive::val`], [`derive::segment_sizes`]) and a
//!   composable [`fingerprint::Fingerprint`] of the derived tree that works even
//!   when the derived tree is exponentially larger than the grammar,
//! * savings-based [`pruning`] of unproductive rules, and
//! * a textual grammar format ([`text::parse_grammar`], [`text::print_grammar`])
//!   used throughout the tests, examples and documentation.
//!
//! ## Example
//!
//! ```
//! use sltgrammar::text::parse_grammar;
//! use sltgrammar::fingerprint::fingerprint;
//!
//! // The running example of the paper's preliminaries.
//! let g = parse_grammar(
//!     "S -> f(A(B,B),#)\n\
//!      B -> A(#,#)\n\
//!      A -> a(#, a(y1, y2))",
//! ).unwrap();
//! assert_eq!(g.edge_count(), 10);
//! assert_eq!(fingerprint(&g).size, 15); // val(S) has 15 nodes
//! ```

#![warn(missing_docs)]

pub mod crc32;
pub mod derive;
pub mod error;
pub mod fingerprint;
pub mod fxhash;
pub mod grammar;
pub mod node;
pub mod pruning;
pub mod rhs;
pub mod serialize;
pub mod stats;
pub mod symbol;
pub mod text;

pub use error::{GrammarError, Result};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use grammar::{Grammar, Rule};
pub use node::{NodeId, NodeKind};
pub use rhs::{RhsNode, RhsTree};
pub use symbol::{NtId, SymbolTable, TermId, NULL_SYMBOL_NAME};
