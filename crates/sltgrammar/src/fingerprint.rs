//! Composable fingerprints of the derived tree `val_G(S)`.
//!
//! The derived tree of an SLCF grammar can be exponentially larger than the
//! grammar, so equality of derived trees cannot in general be checked by
//! materializing them. This module computes, in a single bottom-up pass over the
//! grammar, a *summary* of every rule: the preorder label sequence of `val(A)`
//! decomposed into hashed segments separated by parameter markers. Summaries
//! compose under substitution, so the summary of the start rule yields the exact
//! length and a collision-resistant hash of the preorder label sequence of the
//! full derived tree — the grammar's [`Fingerprint`].
//!
//! Because every symbol has a fixed rank, the preorder label sequence uniquely
//! determines the tree, so equal fingerprints are (modulo hash collisions)
//! equal derived trees. Label codes are derived from symbol *names*, so
//! fingerprints are comparable across different grammars and across plain trees
//! (see `xmltree`).

use std::collections::HashMap;

use crate::grammar::Grammar;
use crate::node::{NodeId, NodeKind};
use crate::symbol::NtId;

/// Multiplier of the polynomial rolling hash (odd, so it is invertible mod 2^64).
const HASH_BASE: u64 = 0x100000001b3;

/// FNV-1a hash of a label name — the per-symbol code fed into the sequence hash.
pub fn label_code(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Avoid the (astronomically unlikely) zero code so empty labels still count.
    h | 1
}

/// `HASH_BASE ^ len (mod 2^64)` via binary exponentiation; `len` may be huge.
fn base_pow(len: u128) -> u64 {
    let mut result: u64 = 1;
    let mut base = HASH_BASE;
    let mut e = len;
    while e > 0 {
        if e & 1 == 1 {
            result = result.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        e >>= 1;
    }
    result
}

/// A hashed contiguous piece of a preorder label sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Number of labels in the piece (saturating).
    pub len: u128,
    /// Polynomial hash of the piece.
    pub hash: u64,
}

impl Segment {
    /// The empty segment.
    pub fn empty() -> Self {
        Segment { len: 0, hash: 0 }
    }

    /// Appends a single label code.
    pub fn push_label(&mut self, code: u64) {
        self.hash = self.hash.wrapping_mul(HASH_BASE).wrapping_add(code);
        self.len = self.len.saturating_add(1);
    }

    /// Appends another segment (concatenation).
    pub fn append(&mut self, other: Segment) {
        self.hash = self
            .hash
            .wrapping_mul(base_pow(other.len))
            .wrapping_add(other.hash);
        self.len = self.len.saturating_add(other.len);
    }
}

/// One item of a rule summary: either a hashed segment of terminal labels or a
/// marker where the derivation of the `j`-th argument is substituted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryItem {
    /// A contiguous hashed run of labels produced by the rule itself (and its callees).
    Seg(Segment),
    /// Placeholder for parameter `y_{j+1}` (0-based index stored).
    Param(u32),
}

/// Summary of `val(A)` for one rule `A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSummary {
    /// Alternating segments and parameter markers, in preorder.
    pub items: Vec<SummaryItem>,
    /// Total number of nodes `val(A)` contributes itself (excluding argument trees).
    pub own_size: u128,
}

impl RuleSummary {
    /// The `k + 1` segment sizes of the paper: number of nodes before `y1`,
    /// between consecutive parameters, and after the last parameter.
    pub fn segment_sizes(&self, rank: usize) -> Vec<u128> {
        let mut out = Vec::with_capacity(rank + 1);
        let mut acc: u128 = 0;
        for item in &self.items {
            match item {
                SummaryItem::Seg(s) => acc = acc.saturating_add(s.len),
                SummaryItem::Param(_) => {
                    out.push(acc);
                    acc = 0;
                }
            }
        }
        out.push(acc);
        // Rules always have exactly `rank` parameters, so this holds by construction.
        debug_assert_eq!(out.len(), rank + 1);
        out
    }
}

/// Exact size and hash of the derived tree's preorder label sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Number of nodes of `val_G(S)` (saturating at `u128::MAX`).
    pub size: u128,
    /// Polynomial hash of the preorder label sequence of `val_G(S)`.
    pub hash: u64,
}

struct SummaryBuilder {
    items: Vec<SummaryItem>,
    current: Segment,
    own_size: u128,
}

impl SummaryBuilder {
    fn new() -> Self {
        SummaryBuilder {
            items: Vec::new(),
            current: Segment::empty(),
            own_size: 0,
        }
    }

    fn push_label(&mut self, code: u64) {
        self.current.push_label(code);
        self.own_size = self.own_size.saturating_add(1);
    }

    fn append_segment(&mut self, seg: Segment) {
        self.current.append(seg);
        self.own_size = self.own_size.saturating_add(seg.len);
    }

    fn push_param(&mut self, j: u32) {
        if self.current.len > 0 {
            self.items.push(SummaryItem::Seg(self.current));
        }
        self.current = Segment::empty();
        self.items.push(SummaryItem::Param(j));
    }

    fn finish(mut self) -> RuleSummary {
        if self.current.len > 0 || self.items.is_empty() {
            self.items.push(SummaryItem::Seg(self.current));
        }
        RuleSummary {
            items: self.items,
            own_size: self.own_size,
        }
    }
}

/// Work item of the iterative summary computation.
enum Work {
    /// Visit a node of the rule's own right-hand side.
    Node(NodeId),
    /// Continue replaying a callee's summary items, substituting arguments.
    NtItem {
        nt: NtId,
        item_idx: usize,
        args: Vec<NodeId>,
    },
}

/// Computes the summary of one rule, given the summaries of all rules it calls.
fn rule_summary(g: &Grammar, nt: NtId, done: &HashMap<NtId, RuleSummary>) -> RuleSummary {
    let rhs = &g.rule(nt).rhs;
    let mut builder = SummaryBuilder::new();
    let mut stack = vec![Work::Node(rhs.root())];
    while let Some(work) = stack.pop() {
        match work {
            Work::Node(node) => match rhs.kind(node) {
                NodeKind::Term(t) => {
                    builder.push_label(label_code(g.symbols.name(t)));
                    for &c in rhs.children(node).iter().rev() {
                        stack.push(Work::Node(c));
                    }
                }
                NodeKind::Param(j) => builder.push_param(j),
                NodeKind::Nt(callee) => {
                    let args = rhs.children(node).to_vec();
                    stack.push(Work::NtItem {
                        nt: callee,
                        item_idx: 0,
                        args,
                    });
                }
            },
            Work::NtItem { nt, item_idx, args } => {
                let summary = &done[&nt];
                if item_idx >= summary.items.len() {
                    continue;
                }
                // Re-push the continuation first so substituted subtrees are
                // processed before the remaining items.
                stack.push(Work::NtItem {
                    nt,
                    item_idx: item_idx + 1,
                    args: args.clone(),
                });
                match summary.items[item_idx] {
                    SummaryItem::Seg(seg) => builder.append_segment(seg),
                    SummaryItem::Param(j) => stack.push(Work::Node(args[j as usize])),
                }
            }
        }
    }
    builder.finish()
}

/// Computes summaries for all rules, callees first.
pub fn summaries(g: &Grammar) -> HashMap<NtId, RuleSummary> {
    let order = g
        .anti_sl_order()
        .expect("fingerprint requires a straight-line grammar");
    let mut done: HashMap<NtId, RuleSummary> = HashMap::with_capacity(order.len());
    for nt in order {
        let s = rule_summary(g, nt, &done);
        done.insert(nt, s);
    }
    done
}

/// Size and hash of the derived tree `val_G(S)`.
pub fn fingerprint(g: &Grammar) -> Fingerprint {
    let all = summaries(g);
    let start = &all[&g.start()];
    let mut seg = Segment::empty();
    for item in &start.items {
        match item {
            SummaryItem::Seg(s) => seg.append(*s),
            SummaryItem::Param(_) => {
                unreachable!("start rule has rank 0 and therefore no parameters")
            }
        }
    }
    Fingerprint {
        size: start.own_size,
        hash: seg.hash,
    }
}

/// Number of nodes of the derived tree (saturating).
pub fn derived_size(g: &Grammar) -> u128 {
    fingerprint(g).size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse_grammar;

    #[test]
    fn label_code_is_stable_and_nonzero() {
        assert_eq!(label_code("a"), label_code("a"));
        assert_ne!(label_code("a"), label_code("b"));
        assert_ne!(label_code(""), 0);
    }

    #[test]
    fn segment_concatenation_is_associative() {
        let mut a = Segment::empty();
        a.push_label(label_code("x"));
        let mut b = Segment::empty();
        b.push_label(label_code("y"));
        b.push_label(label_code("z"));

        // (x . y) . z == x . (y . z)
        let mut xy = a;
        let mut only_y = Segment::empty();
        only_y.push_label(label_code("y"));
        xy.append(only_y);
        let mut z = Segment::empty();
        z.push_label(label_code("z"));
        let mut left = xy;
        left.append(z);

        let mut right = a;
        right.append(b);
        assert_eq!(left, right);
    }

    #[test]
    fn fingerprint_matches_between_equivalent_grammars() {
        // Paper example vs its fully inlined version: both derive
        // f(a(#, a(a(#,a(#,#)), a(#,a(#,#)))), #).
        let g1 = parse_grammar(
            "S -> f(A(B,B),#)\nB -> A(#,#)\nA -> a(#, a(y1, y2))",
        )
        .unwrap();
        let g2 = parse_grammar(
            "S -> f(a(#, a(a(#,a(#,#)), a(#,a(#,#)))), #)",
        )
        .unwrap();
        assert_eq!(fingerprint(&g1), fingerprint(&g2));
        assert_eq!(derived_size(&g1), 15);
    }

    #[test]
    fn fingerprint_distinguishes_different_trees() {
        let g1 = parse_grammar("S -> f(a(#,#),#)").unwrap();
        let g2 = parse_grammar("S -> f(b(#,#),#)").unwrap();
        assert_ne!(fingerprint(&g1), fingerprint(&g2));
        // Same multiset of labels, different shape.
        let g3 = parse_grammar("S -> f(a(#,a(#,#)),#)").unwrap();
        let g4 = parse_grammar("S -> f(a(a(#,#),#),#)").unwrap();
        assert_ne!(fingerprint(&g3), fingerprint(&g4));
    }

    #[test]
    fn exponential_grammar_size_is_exact() {
        // A chain of k doubling rules: derived size = 2^k leaves.
        let mut text = String::from("S -> f(A1,#)\n");
        let k = 40;
        for i in 1..k {
            text.push_str(&format!("A{i} -> g(A{},A{})\n", i + 1, i + 1));
        }
        text.push_str(&format!("A{k} -> a"));
        let g = parse_grammar(&text).unwrap();
        // Own sizes: leaf a = 1; each level: 1 + 2 * below; total chain below S:
        let mut below: u128 = 1;
        for _ in 1..k {
            below = 1 + 2 * below;
        }
        assert_eq!(derived_size(&g), 2 + below);
    }

    #[test]
    fn segment_sizes_match_paper_example() {
        // val(A) = f(y1, g(h(a, y2), g(a, y3))): size(A,0)=1, size(A,1)=3, size(A,2)=2, size(A,3)=0.
        let g = parse_grammar(
            "S -> r(A(x,x,x))\nA -> f(y1, g(h(a, y2), g(a, y3)))",
        )
        .unwrap();
        let a = g.nt_by_name("A").unwrap();
        let all = summaries(&g);
        assert_eq!(all[&a].segment_sizes(3), vec![1, 3, 2, 0]);
    }
}
