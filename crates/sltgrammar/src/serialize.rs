//! Compact binary serialization of SLCF grammars.
//!
//! Grammars are the *persistent* form of a compressed document (the paper's
//! scenario keeps the grammar in memory, but any DOM replacement also needs to
//! be loadable from and writable to disk). The format is byte-oriented and
//! deliberately simple:
//!
//! ```text
//! magic "SLTG"  version u8  crc32 u32-LE (over everything that follows)
//! symbol count          (varint)
//!   per symbol: rank (varint), name length (varint), name bytes (UTF-8)
//! rule count            (varint)
//!   per rule:   rank (varint), name length (varint), name bytes
//!   per rule:   node count (varint), nodes in preorder:
//!                 tag 0 = terminal  + symbol index (varint)
//!                 tag 1 = nonterminal + rule index (varint)
//!                 tag 2 = parameter + parameter index (varint)
//! ```
//!
//! Child counts are not stored: every label's rank is known from the header,
//! so the tree is reconstructed from the preorder stream alone. Rule indices
//! refer to the order in which rules are written (start rule first), making
//! the encoding independent of internal `NtId` values.
//!
//! All integers use LEB128 variable-length encoding, so small grammars stay
//! small: the encoded size is roughly `nodes + names` bytes.
//!
//! # Versioning and integrity
//!
//! Version 2 (current) places a CRC-32 of the body right after the version
//! byte; [`decode`] verifies it before parsing and rejects mismatches with
//! the dedicated [`GrammarError::Checksum`] variant, so bit rot in a stored
//! grammar is reported as corruption instead of as a confusing structural
//! error. Version 1 files (no checksum) are still decoded — a deliberate
//! backward-compatibility shim: the format change ships without invalidating
//! existing `.sltg` files, and the shim costs four bytes of branch in
//! `decode`. Unknown versions are rejected.
//!
//! # Robustness against corrupt input
//!
//! `decode` is safe to run on untrusted bytes: every length field is checked
//! against the number of bytes actually remaining before any allocation is
//! sized from it (a flipped bit in a count cannot trigger an OOM-sized
//! `Vec::with_capacity`), and a successful decode always returns a validated
//! grammar. The property tests in `tests/serialization_baselines.rs` pin
//! this on arbitrary, truncated and bit-flipped inputs.

use crate::crc32::crc32;
use crate::error::{GrammarError, Result};
use crate::grammar::Grammar;
use crate::node::{NodeId, NodeKind};
use crate::rhs::RhsTree;
use crate::symbol::{NtId, SymbolTable, TermId};

/// Magic bytes identifying the format.
pub const MAGIC: &[u8; 4] = b"SLTG";
/// Current format version: CRC-32 of the body follows the version byte.
pub const VERSION: u8 = 2;
/// The original format version (no checksum). [`decode`] still accepts it so
/// files written before the CRC was introduced remain readable.
pub const LEGACY_VERSION: u8 = 1;
/// Byte offset of the CRC-32 field in a version-2 encoding; the checksummed
/// body starts at `CRC_OFFSET + 4`.
const CRC_OFFSET: usize = MAGIC.len() + 1;

// ----- varint primitives -----

fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn error(&self, detail: &str) -> GrammarError {
        GrammarError::Decode {
            offset: self.pos,
            detail: detail.to_string(),
        }
    }

    fn byte(&mut self) -> Result<u8> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 63 && byte > 1 {
                return Err(self.error("varint overflows 64 bits"));
            }
            value |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn string(&mut self) -> Result<String> {
        let len = self.varint()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.error("name is not valid UTF-8"))
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Reads a count varint and bounds it by the bytes actually remaining:
    /// every counted element occupies at least `min_bytes` bytes of input, so
    /// a larger count is corrupt and must not size an allocation.
    fn count(&mut self, min_bytes: usize, what: &str) -> Result<usize> {
        let n = self.varint()? as usize;
        if n > self.remaining() / min_bytes {
            return Err(self.error(&format!(
                "{what} count {n} exceeds what the remaining input could hold"
            )));
        }
        Ok(n)
    }

    fn finished(&self) -> bool {
        self.pos == self.data.len()
    }
}

// ----- encoding -----

/// Encodes a grammar into the compact binary format (version 2: the four
/// bytes after the version hold a CRC-32 of everything that follows them).
pub fn encode(g: &Grammar) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder, patched below.

    // Symbol table.
    write_varint(&mut out, g.symbols.len() as u64);
    for (_, name, rank) in g.symbols.iter() {
        write_varint(&mut out, rank as u64);
        write_varint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }

    // Rule order: start rule first, remaining live rules in NtId order.
    let mut order: Vec<NtId> = vec![g.start()];
    order.extend(g.nonterminals().into_iter().filter(|&nt| nt != g.start()));
    let index_of = |nt: NtId| -> u64 {
        order
            .iter()
            .position(|&x| x == nt)
            .expect("every referenced rule is live") as u64
    };

    write_varint(&mut out, order.len() as u64);
    for &nt in &order {
        let rule = g.rule(nt);
        write_varint(&mut out, rule.rank as u64);
        write_varint(&mut out, rule.name.len() as u64);
        out.extend_from_slice(rule.name.as_bytes());
    }
    for &nt in &order {
        let rhs = &g.rule(nt).rhs;
        let preorder = rhs.preorder();
        write_varint(&mut out, preorder.len() as u64);
        for node in preorder {
            match rhs.kind(node) {
                NodeKind::Term(t) => {
                    out.push(0);
                    write_varint(&mut out, t.0 as u64);
                }
                NodeKind::Nt(callee) => {
                    out.push(1);
                    write_varint(&mut out, index_of(callee));
                }
                NodeKind::Param(i) => {
                    out.push(2);
                    write_varint(&mut out, i as u64);
                }
            }
        }
    }
    let crc = crc32(&out[CRC_OFFSET + 4..]);
    out[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
    out
}

// ----- decoding -----

/// Rank of a node label given the decoded headers.
fn label_rank(
    kind: &DecodedKind,
    symbol_ranks: &[usize],
    rule_ranks: &[usize],
) -> usize {
    match *kind {
        DecodedKind::Term(t) => symbol_ranks[t],
        DecodedKind::Nt(r) => rule_ranks[r],
        DecodedKind::Param(_) => 0,
    }
}

#[derive(Clone, Copy)]
enum DecodedKind {
    Term(usize),
    Nt(usize),
    Param(u32),
}

/// Decodes a grammar from its binary form. The result is validated before it
/// is returned, so a successful decode always yields a well-formed grammar.
pub fn decode(data: &[u8]) -> Result<Grammar> {
    let mut r = Reader::new(data);
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(r.error("bad magic bytes (not an SLTG file)"));
    }
    let version = r.byte()?;
    match version {
        VERSION => {
            let header = r.bytes(4)?;
            let expected = u32::from_le_bytes(header.try_into().expect("4-byte slice"));
            let found = crc32(&data[r.pos..]);
            if expected != found {
                return Err(GrammarError::Checksum { expected, found });
            }
        }
        // Backward-compat shim: version 1 carried no checksum.
        LEGACY_VERSION => {}
        other => return Err(r.error(&format!("unsupported format version {other}"))),
    }

    // Symbol table. Every count below is bounded by the bytes remaining
    // before it sizes an allocation (a corrupt count must not OOM).
    let symbol_count = r.count(2, "symbol")?;
    let mut symbols = SymbolTable::new();
    let mut symbol_ranks = Vec::with_capacity(symbol_count);
    for _ in 0..symbol_count {
        let rank = r.varint()? as usize;
        let name = r.string()?;
        let id = symbols.intern(&name, rank)?;
        if id.index() + 1 != symbols.len() {
            return Err(r.error(&format!("duplicate symbol `{name}` in symbol table")));
        }
        symbol_ranks.push(rank);
    }

    let (rule_names, rule_ranks, bodies) = decode_rules(&mut r, symbol_count, &symbol_ranks)?;
    if !r.finished() {
        return Err(r.error("trailing bytes after the grammar"));
    }
    assemble(symbols, rule_names, rule_ranks, bodies)
}

/// Reads the rule headers and preorder bodies (the format tail shared by
/// [`decode`] and [`decode_with_shared`]). Counts are bounded against the
/// remaining input before sizing any allocation.
fn decode_rules(
    r: &mut Reader<'_>,
    symbol_count: usize,
    symbol_ranks: &[usize],
) -> Result<(Vec<String>, Vec<usize>, Vec<RhsTree>)> {
    let rule_count = r.count(2, "rule")?;
    if rule_count == 0 {
        return Err(r.error("grammar must have at least a start rule"));
    }
    let mut rule_names = Vec::with_capacity(rule_count);
    let mut rule_ranks = Vec::with_capacity(rule_count);
    for _ in 0..rule_count {
        rule_ranks.push(r.varint()? as usize);
        rule_names.push(r.string()?);
    }

    let mut bodies: Vec<RhsTree> = Vec::with_capacity(rule_count);
    for rule_name in rule_names.iter().take(rule_count) {
        let node_count = r.count(2, "node")?;
        if node_count == 0 {
            return Err(r.error(&format!("rule `{rule_name}` has an empty body")));
        }
        // Read the preorder stream.
        let mut kinds = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let tag = r.byte()?;
            let value = r.varint()? as usize;
            let kind = match tag {
                0 => {
                    if value >= symbol_count {
                        return Err(r.error("terminal index out of range"));
                    }
                    DecodedKind::Term(value)
                }
                1 => {
                    if value >= rule_count {
                        return Err(r.error("rule index out of range"));
                    }
                    DecodedKind::Nt(value)
                }
                2 => DecodedKind::Param(value as u32),
                other => return Err(r.error(&format!("unknown node tag {other}"))),
            };
            kinds.push(kind);
        }
        bodies.push(rebuild_tree(r, &kinds, symbol_ranks, &rule_ranks)?);
    }
    Ok((rule_names, rule_ranks, bodies))
}

/// Assembles and validates a grammar from decoded parts: the start rule
/// (index 0) first, then the rest in written order.
fn assemble(
    symbols: SymbolTable,
    rule_names: Vec<String>,
    rule_ranks: Vec<usize>,
    bodies: Vec<RhsTree>,
) -> Result<Grammar> {
    let mut grammar = Grammar::new(symbols, bodies[0].clone());
    let start = grammar.start();
    grammar.rename_rule(start, &rule_names[0]);
    for i in 1..rule_names.len() {
        grammar.add_rule(&rule_names[i], rule_ranks[i], bodies[i].clone());
    }
    grammar.validate()?;
    Ok(grammar)
}

// ----- shared-alphabet encoding (checkpoint extents) -----

/// Encodes a grammar whose symbol table shares a sealed master prefix,
/// writing only the private tail of the alphabet. This is the per-document
/// extent payload of the store's checkpoint-v3 format:
///
/// ```text
/// shared prefix length  (varint — ids below this come from the master table)
/// tail symbol count     (varint)
///   per tail symbol: rank (varint), name length (varint), name bytes
/// rule headers + preorder bodies exactly as in the standalone format,
///   except terminal nodes store the *raw* `TermId` (valid against the
///   reconstructed master-prefix + tail table, so no remapping happens on
///   either side)
/// ```
///
/// There is no magic/version/CRC framing: the enclosing checkpoint indexes
/// and checksums each extent. [`decode_with_shared`] reverses this against
/// the restored master table.
pub fn encode_with_shared(g: &Grammar) -> Vec<u8> {
    let mut out = Vec::new();
    let shared_len = g.symbols.shared_len();
    write_varint(&mut out, shared_len as u64);
    write_varint(&mut out, (g.symbols.len() - shared_len) as u64);
    for (id, name, rank) in g.symbols.iter() {
        if id.index() < shared_len {
            continue;
        }
        write_varint(&mut out, rank as u64);
        write_varint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }

    let mut order: Vec<NtId> = vec![g.start()];
    order.extend(g.nonterminals().into_iter().filter(|&nt| nt != g.start()));
    let index_of = |nt: NtId| -> u64 {
        order
            .iter()
            .position(|&x| x == nt)
            .expect("every referenced rule is live") as u64
    };
    write_varint(&mut out, order.len() as u64);
    for &nt in &order {
        let rule = g.rule(nt);
        write_varint(&mut out, rule.rank as u64);
        write_varint(&mut out, rule.name.len() as u64);
        out.extend_from_slice(rule.name.as_bytes());
    }
    for &nt in &order {
        let rhs = &g.rule(nt).rhs;
        let preorder = rhs.preorder();
        write_varint(&mut out, preorder.len() as u64);
        for node in preorder {
            match rhs.kind(node) {
                NodeKind::Term(t) => {
                    out.push(0);
                    write_varint(&mut out, t.0 as u64);
                }
                NodeKind::Nt(callee) => {
                    out.push(1);
                    write_varint(&mut out, index_of(callee));
                }
                NodeKind::Param(i) => {
                    out.push(2);
                    write_varint(&mut out, i as u64);
                }
            }
        }
    }
    out
}

/// Decodes an [`encode_with_shared`] payload against the master symbol
/// table it was encoded under (or any master extending it): the recorded
/// shared prefix is adopted zero-copy via [`SymbolTable::shared_prefix`]
/// (segment `Arc`s shared, nothing re-interned) and only the private tail
/// is interned on top. Safe on untrusted bytes: counts are bounded before
/// allocation, the prefix length must be a master segment boundary, tail
/// symbols must extend (not collide with) the prefix, and every terminal
/// id is range-checked. The result is validated before it is returned.
pub fn decode_with_shared(data: &[u8], master: &SymbolTable) -> Result<Grammar> {
    let mut r = Reader::new(data);
    let shared_len = r.varint()? as usize;
    if shared_len > master.len() {
        return Err(r.error(&format!(
            "shared prefix length {shared_len} exceeds the master table ({} symbols)",
            master.len()
        )));
    }
    let mut symbols = master.shared_prefix(shared_len)?;
    let tail_count = r.count(2, "tail symbol")?;
    for i in 0..tail_count {
        let rank = r.varint()? as usize;
        let name = r.string()?;
        let id = symbols.intern(&name, rank)?;
        if id.index() != shared_len + i {
            return Err(r.error(&format!(
                "tail symbol `{name}` collides with the shared prefix"
            )));
        }
    }
    let symbol_count = symbols.len();
    let symbol_ranks: Vec<usize> = (0..symbol_count)
        .map(|i| symbols.rank(TermId(i as u32)))
        .collect();
    let (rule_names, rule_ranks, bodies) = decode_rules(&mut r, symbol_count, &symbol_ranks)?;
    if !r.finished() {
        return Err(r.error("trailing bytes after the grammar"));
    }
    assemble(symbols, rule_names, rule_ranks, bodies)
}

/// Rebuilds an [`RhsTree`] from its preorder label stream; the rank of every
/// label dictates how many of the following nodes are its children.
fn rebuild_tree(
    r: &Reader<'_>,
    kinds: &[DecodedKind],
    symbol_ranks: &[usize],
    rule_ranks: &[usize],
) -> Result<RhsTree> {
    let to_kind = |k: &DecodedKind| -> NodeKind {
        match *k {
            DecodedKind::Term(t) => NodeKind::Term(TermId(t as u32)),
            DecodedKind::Nt(n) => NodeKind::Nt(NtId(n as u32)),
            DecodedKind::Param(i) => NodeKind::Param(i),
        }
    };
    let mut tree = RhsTree::singleton(to_kind(&kinds[0]));
    let root = tree.root();
    // Stack of (node, children still expected).
    let mut stack: Vec<(NodeId, usize)> = vec![(root, label_rank(&kinds[0], symbol_ranks, rule_ranks))];
    for kind in &kinds[1..] {
        // Attach under the innermost node that still expects children.
        while let Some(&(_, 0)) = stack.last() {
            stack.pop();
        }
        let parent = match stack.last_mut() {
            Some(top) => {
                top.1 -= 1;
                top.0
            }
            None => {
                return Err(GrammarError::Decode {
                    offset: r.pos,
                    detail: "preorder stream has more nodes than the ranks allow".to_string(),
                })
            }
        };
        let node = tree.add_leaf(to_kind(kind));
        tree.push_child(parent, node);
        stack.push((node, label_rank(kind, symbol_ranks, rule_ranks)));
    }
    // Every node must have received all its children.
    while let Some(&(_, 0)) = stack.last() {
        stack.pop();
    }
    if !stack.is_empty() {
        return Err(GrammarError::Decode {
            offset: r.pos,
            detail: "preorder stream ended before all children were supplied".to_string(),
        });
    }
    Ok(tree)
}

/// Encoded size in bytes of a grammar (convenience wrapper around [`encode`]).
pub fn encoded_size(g: &Grammar) -> usize {
    encode(g).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;
    use crate::text::{parse_grammar, print_grammar};

    fn paper_grammar() -> Grammar {
        parse_grammar("S -> f(A(B,B),#)\nB -> A(#,#)\nA -> a(#, a(y1, y2))").unwrap()
    }

    /// Recomputes the CRC field after a test deliberately corrupts the body,
    /// so the corruption reaches the structural validation under test.
    fn reframe(bytes: &mut [u8]) {
        let crc = crc32(&bytes[CRC_OFFSET + 4..]);
        bytes[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn roundtrip_preserves_structure_names_and_derived_tree() {
        let g = paper_grammar();
        let bytes = encode(&g);
        let back = decode(&bytes).unwrap();
        assert_eq!(fingerprint(&g), fingerprint(&back));
        assert_eq!(g.rule_count(), back.rule_count());
        assert_eq!(g.edge_count(), back.edge_count());
        assert_eq!(print_grammar(&g), print_grammar(&back));
    }

    #[test]
    fn roundtrip_of_an_exponential_grammar() {
        let mut text = String::from("S -> A1(A1(#))\n");
        for i in 1..=9 {
            text.push_str(&format!("A{i} -> A{}(A{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("A10 -> a(y1)");
        let g = parse_grammar(&text).unwrap();
        let back = decode(&encode(&g)).unwrap();
        assert_eq!(fingerprint(&g), fingerprint(&back));
        assert_eq!(print_grammar(&g), print_grammar(&back));
    }

    #[test]
    fn encoding_is_compact() {
        let g = paper_grammar();
        let bytes = encode(&g);
        // 13 nodes, 6 symbols/rule names: stays well below 100 bytes.
        assert!(bytes.len() < 100, "unexpectedly large encoding: {} bytes", bytes.len());
        assert_eq!(encoded_size(&g), bytes.len());
    }

    #[test]
    fn rejects_corrupted_input() {
        let g = paper_grammar();
        let bytes = encode(&g);

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode(&bad), Err(GrammarError::Decode { .. })));

        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(decode(&bad), Err(GrammarError::Decode { .. })));

        // Truncations at every length must error, never panic.
        for len in 0..bytes.len() {
            let truncated = &bytes[..len];
            assert!(decode(truncated).is_err(), "truncation to {len} bytes must fail");
        }

        // Trailing garbage (caught by the CRC before parsing even starts).
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(decode(&bad).is_err());

        // Trailing garbage with a fixed-up CRC still fails structurally.
        reframe(&mut bad);
        assert!(matches!(decode(&bad), Err(GrammarError::Decode { .. })));
    }

    #[test]
    fn checksum_mismatch_is_a_distinct_error() {
        let g = paper_grammar();
        let mut bytes = encode(&g);
        // Flip a bit in the body: the CRC check must fire with the dedicated
        // variant, not a confusing structural decode error.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        match decode(&bytes) {
            Err(GrammarError::Checksum { expected, found }) => assert_ne!(expected, found),
            other => panic!("expected Checksum error, got {other:?}"),
        }
        // Corrupting the CRC field itself is also a checksum mismatch.
        let mut bytes = encode(&g);
        bytes[CRC_OFFSET] ^= 0xFF;
        assert!(matches!(decode(&bytes), Err(GrammarError::Checksum { .. })));
    }

    #[test]
    fn legacy_v1_files_still_decode() {
        // A version-1 file is the version-2 body with no CRC field and the
        // version byte set to 1; the compat shim must accept it unchanged.
        let g = paper_grammar();
        let v2 = encode(&g);
        let mut v1 = Vec::with_capacity(v2.len() - 4);
        v1.extend_from_slice(MAGIC);
        v1.push(LEGACY_VERSION);
        v1.extend_from_slice(&v2[CRC_OFFSET + 4..]);
        let back = decode(&v1).unwrap();
        assert_eq!(fingerprint(&g), fingerprint(&back));
        assert_eq!(print_grammar(&g), print_grammar(&back));
    }

    #[test]
    fn corrupt_counts_cannot_cause_huge_allocations() {
        // Hand-craft a file whose symbol count claims ~2^60 entries; decode
        // must reject it from the remaining-bytes bound, not try to allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION);
        bytes.extend_from_slice(&[0u8; 4]);
        let mut body = Vec::new();
        write_varint(&mut body, 1u64 << 60);
        bytes.extend_from_slice(&body);
        reframe(&mut bytes);
        match decode(&bytes) {
            Err(GrammarError::Decode { detail, .. }) => {
                assert!(detail.contains("count"), "unexpected detail: {detail}")
            }
            other => panic!("expected Decode error, got {other:?}"),
        }
    }

    #[test]
    fn varint_roundtrip_edge_cases() {
        for value in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), value);
            assert!(r.finished());
        }
    }

    #[test]
    fn shared_roundtrip_adopts_the_master_prefix() {
        // A fully sealed document table whose alphabet is a prefix of a
        // larger master: the payload records no tail and decodes against
        // the master's segments without re-interning anything.
        let mut g = paper_grammar();
        g.symbols.seal();
        let mut master = g.symbols.clone();
        master.intern("later-doc-label", 3).unwrap();
        master.seal();

        let bytes = encode_with_shared(&g);
        let back = decode_with_shared(&bytes, &master).unwrap();
        assert_eq!(fingerprint(&g), fingerprint(&back));
        assert_eq!(print_grammar(&g), print_grammar(&back));
        assert_eq!(back.symbols.shared_len(), g.symbols.len());
        // The payload is smaller than the standalone encoding: no symbol
        // names, no CRC framing.
        assert!(bytes.len() < encode(&g).len());
    }

    #[test]
    fn shared_roundtrip_with_a_private_tail() {
        // shared prefix [f, a] + private tail [b]; S -> f(a, b).
        let mut table = SymbolTable::new();
        let f = table.intern("f", 2).unwrap();
        let a = table.intern("a", 0).unwrap();
        table.seal();
        let master = table.clone();
        let b = table.intern("b", 0).unwrap();
        let mut rhs = RhsTree::singleton(NodeKind::Term(f));
        let root = rhs.root();
        for leaf in [a, b] {
            let node = rhs.add_leaf(NodeKind::Term(leaf));
            rhs.push_child(root, node);
        }
        let g = Grammar::new(table, rhs);
        g.validate().unwrap();

        let bytes = encode_with_shared(&g);
        let back = decode_with_shared(&bytes, &master).unwrap();
        assert_eq!(fingerprint(&g), fingerprint(&back));
        assert_eq!(print_grammar(&g), print_grammar(&back));
        assert_eq!(back.symbols.shared_len(), 2);
        assert_eq!(back.symbols.len(), 3);
    }

    #[test]
    fn shared_decode_rejects_corrupt_prefixes_and_tails() {
        let mut g = paper_grammar();
        g.symbols.seal();
        let master = g.symbols.clone();
        let bytes = encode_with_shared(&g);

        // A prefix length that is not a segment boundary of the master.
        let mut bad = bytes.clone();
        assert!(g.symbols.len() > 1, "test needs a multi-symbol grammar");
        bad[0] = 1; // varint shared_len = 1, mid-segment
        assert!(matches!(
            decode_with_shared(&bad, &master),
            Err(GrammarError::Decode { .. })
        ));

        // A prefix length beyond the master table.
        let mut bad = Vec::new();
        write_varint(&mut bad, master.len() as u64 + 10);
        bad.extend_from_slice(&bytes[1..]);
        assert!(decode_with_shared(&bad, &master).is_err());

        // Truncations at every length must error, never panic.
        for len in 0..bytes.len() {
            assert!(
                decode_with_shared(&bytes[..len], &master).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn decode_validates_the_grammar() {
        // Hand-craft an encoding whose body references a parameter out of range;
        // validation must reject it instead of producing a broken grammar.
        let g = parse_grammar("S -> f(a(#,#),#)").unwrap();
        let mut bytes = encode(&g);
        // The last node of the only rule is a terminal `#` (tag 0). Overwrite it
        // with a parameter reference (tag 2, index 5): arity stays right but the
        // grammar becomes invalid (start rule has rank 0).
        let len = bytes.len();
        bytes[len - 2] = 2;
        bytes[len - 1] = 5;
        reframe(&mut bytes); // keep the CRC valid so validation is what fires
        assert!(decode(&bytes).is_err());
    }
}
