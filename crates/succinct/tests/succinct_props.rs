//! Property-based tests: the succinct representations must agree with the
//! pointer-based [`XmlTree`] on arbitrary random documents.

use proptest::prelude::*;
use succinct_xml::bitvector::BitVector;
use succinct_xml::bp::BpTree;
use succinct_xml::dom::SuccinctDom;
use succinct_xml::louds::LoudsTree;
use xmltree::{XmlNodeId, XmlTree};

/// Builds a random tree from a shape vector: entry `i` is the parent index
/// (drawn in `0..=i`) of node `i + 1`, guaranteeing a connected acyclic shape.
fn tree_from_shape(parents: &[usize], labels: &[u8]) -> XmlTree {
    let mut xml = XmlTree::new("r");
    let mut ids: Vec<XmlNodeId> = vec![xml.root()];
    for (i, &p) in parents.iter().enumerate() {
        let parent = ids[p % ids.len()];
        let label = format!("t{}", labels.get(i).copied().unwrap_or(0) % 5);
        ids.push(xml.add_child(parent, &label));
    }
    xml
}

fn arb_tree() -> impl Strategy<Value = XmlTree> {
    (
        prop::collection::vec(0usize..500, 0..200),
        prop::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(parents, labels)| tree_from_shape(&parents, &labels))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitvector_rank_select_agree_with_naive(bits in prop::collection::vec(any::<bool>(), 0..2000)) {
        let bv = BitVector::from_bits(bits.iter().copied());
        prop_assert_eq!(bv.len(), bits.len());
        let mut ones = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bv.rank1(i), ones);
            prop_assert_eq!(bv.get(i), b);
            if b {
                ones += 1;
                prop_assert_eq!(bv.select1(ones), Some(i));
            }
        }
        prop_assert_eq!(bv.rank1(bits.len()), ones);
        prop_assert_eq!(bv.count_ones(), ones);
        prop_assert_eq!(bv.select1(ones + 1), None);
    }

    /// The sampled select directory is a pure lookup accelerator: on arbitrary
    /// bit patterns it must return exactly what the rank-directory binary
    /// search (the pre-directory implementation) returns, for every k,
    /// including out-of-range ones.
    #[test]
    fn sampled_select_matches_binary_search(
        bits in prop::collection::vec(any::<bool>(), 0..4000),
        probes in prop::collection::vec(any::<u64>(), 0..32),
    ) {
        let bv = BitVector::from_bits(bits.iter().copied());
        for k in 0..=bv.count_ones() + 2 {
            prop_assert_eq!(bv.select1(k), bv.select1_rank_search(k), "k={}", k);
        }
        for &p in &probes {
            prop_assert_eq!(bv.select1(p), bv.select1_rank_search(p), "probe={}", p);
        }
    }

    /// Mirror of the previous property for the sampled zero directory: on
    /// arbitrary bit patterns `select0` must return exactly what the
    /// rank-directory binary search returns, for every k, including
    /// out-of-range ones — and stay the exact inverse of `rank0`.
    #[test]
    fn sampled_select0_matches_binary_search(
        bits in prop::collection::vec(any::<bool>(), 0..4000),
        probes in prop::collection::vec(any::<u64>(), 0..32),
    ) {
        let bv = BitVector::from_bits(bits.iter().copied());
        for k in 0..=bv.count_zeros() + 2 {
            prop_assert_eq!(bv.select0(k), bv.select0_rank_search(k), "k={}", k);
        }
        for &p in &probes {
            prop_assert_eq!(bv.select0(p), bv.select0_rank_search(p), "probe={}", p);
        }
        let mut zeros = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bv.rank0(i), zeros);
            if !b {
                zeros += 1;
                prop_assert_eq!(bv.select0(zeros), Some(i));
            }
        }
        prop_assert_eq!(bv.count_zeros(), zeros);
    }

    #[test]
    fn bp_navigation_matches_pointer_tree(xml in arb_tree()) {
        let bp = BpTree::from_xml(&xml);
        let order = xml.preorder();
        prop_assert_eq!(bp.node_count(), order.len());
        let position_of = |x: XmlNodeId| order.iter().position(|&y| y == x).unwrap();
        for (idx, &xn) in order.iter().enumerate() {
            let v = bp.node_at_preorder(idx).unwrap();
            prop_assert_eq!(bp.preorder_index(v), idx);
            prop_assert_eq!(bp.degree(v), xml.children(xn).len());
            prop_assert_eq!(
                bp.first_child(v).map(|c| bp.preorder_index(c)),
                xml.children(xn).first().map(|&c| position_of(c))
            );
            prop_assert_eq!(
                bp.parent(v).map(|p| bp.preorder_index(p)),
                xml.parent(xn).map(position_of)
            );
            // Subtree size equals the number of descendants + 1.
            let mut count = 0usize;
            let mut stack = vec![xn];
            while let Some(n) = stack.pop() {
                count += 1;
                stack.extend(xml.children(n).iter().copied());
            }
            prop_assert_eq!(bp.subtree_size(v), count);
        }
    }

    #[test]
    fn louds_navigation_matches_pointer_tree(xml in arb_tree()) {
        let t = LoudsTree::from_xml(&xml);
        // Level-order listing of the pointer tree.
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(xml.root());
        while let Some(v) = queue.pop_front() {
            order.push(v);
            queue.extend(xml.children(v).iter().copied());
        }
        prop_assert_eq!(t.node_count(), order.len());
        for (i, &xn) in order.iter().enumerate() {
            let v = t.node_at_level_order(i).unwrap();
            prop_assert_eq!(t.level_order_index(v), i);
            prop_assert_eq!(t.degree(v), xml.children(xn).len());
            for (ci, &xc) in xml.children(xn).iter().enumerate() {
                let child = t.child(v, ci).unwrap();
                let child_lo = order.iter().position(|&x| x == xc).unwrap();
                prop_assert_eq!(t.level_order_index(child), child_lo);
                prop_assert_eq!(t.parent(child), Some(v));
            }
        }
    }

    #[test]
    fn succinct_dom_roundtrips(xml in arb_tree()) {
        let dom = SuccinctDom::build(&xml);
        prop_assert_eq!(dom.node_count(), xml.node_count());
        prop_assert_eq!(dom.to_xml().to_xml(), xml.to_xml());
        // Every label is readable in document order.
        let expected: Vec<String> = xml.preorder().iter().map(|&n| xml.label(n).to_string()).collect();
        let got: Vec<String> = dom.preorder().map(|v| dom.label(v).to_string()).collect();
        prop_assert_eq!(got, expected);
    }
}
