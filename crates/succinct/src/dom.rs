//! A read-only succinct DOM: balanced parentheses plus a label array.
//!
//! This is the "engineering succinct DOM" baseline of Delpratt, Raman and
//! Rahman that the ICDE 2016 paper cites as the space-efficient but
//! *non-updatable* alternative to grammar compression: the tree shape costs
//! 2 bits per node (plus sub-linear rank/select overhead) and the element
//! labels cost one small integer per node into a shared tag dictionary.
//!
//! The structure supports full DOM navigation (first-child, next-sibling,
//! parent, depth, subtree size) and label access in document order, but no
//! updates — exactly the trade-off the paper's grammar-based approach removes.

use std::collections::HashMap;

use crate::bp::{BpNode, BpTree};
use xmltree::{XmlNodeId, XmlTree};

/// A node handle of a [`SuccinctDom`] (position of its open parenthesis).
pub type DomNode = BpNode;

/// A static, navigable, labelled XML document in succinct form.
#[derive(Debug, Clone)]
pub struct SuccinctDom {
    shape: BpTree,
    /// Tag id of every node, indexed by preorder rank.
    labels: Vec<u32>,
    /// Tag dictionary.
    tag_names: Vec<String>,
}

impl SuccinctDom {
    /// Builds the succinct DOM of an XML document.
    pub fn build(xml: &XmlTree) -> Self {
        let shape = BpTree::from_xml(xml);
        let mut tag_ids: HashMap<String, u32> = HashMap::new();
        let mut tag_names: Vec<String> = Vec::new();
        let mut labels = Vec::with_capacity(xml.node_count());
        for n in xml.preorder() {
            let label = xml.label(n);
            let id = *tag_ids.entry(label.to_string()).or_insert_with(|| {
                tag_names.push(label.to_string());
                (tag_names.len() - 1) as u32
            });
            labels.push(id);
        }
        SuccinctDom {
            shape,
            labels,
            tag_names,
        }
    }

    /// Number of element nodes.
    pub fn node_count(&self) -> usize {
        self.shape.node_count()
    }

    /// Number of distinct element tags.
    pub fn tag_count(&self) -> usize {
        self.tag_names.len()
    }

    /// The tree-shape component.
    pub fn shape(&self) -> &BpTree {
        &self.shape
    }

    /// The root element.
    pub fn root(&self) -> DomNode {
        self.shape.root()
    }

    /// Tag name of a node.
    pub fn label(&self, v: DomNode) -> &str {
        let idx = self.shape.preorder_index(v);
        &self.tag_names[self.labels[idx] as usize]
    }

    /// First child of a node.
    pub fn first_child(&self, v: DomNode) -> Option<DomNode> {
        self.shape.first_child(v)
    }

    /// Next sibling of a node.
    pub fn next_sibling(&self, v: DomNode) -> Option<DomNode> {
        self.shape.next_sibling(v)
    }

    /// Parent of a node.
    pub fn parent(&self, v: DomNode) -> Option<DomNode> {
        self.shape.parent(v)
    }

    /// Whether a node has no children.
    pub fn is_leaf(&self, v: DomNode) -> bool {
        self.shape.is_leaf(v)
    }

    /// Number of children of a node.
    pub fn degree(&self, v: DomNode) -> usize {
        self.shape.degree(v)
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, v: DomNode) -> usize {
        self.shape.depth(v)
    }

    /// Number of nodes in the subtree rooted at `v`.
    pub fn subtree_size(&self, v: DomNode) -> usize {
        self.shape.subtree_size(v)
    }

    /// 0-based document-order index of a node.
    pub fn preorder_index(&self, v: DomNode) -> usize {
        self.shape.preorder_index(v)
    }

    /// Node at the given 0-based document-order index.
    pub fn node_at_preorder(&self, index: usize) -> Option<DomNode> {
        self.shape.node_at_preorder(index)
    }

    /// Iterates over all nodes in document order.
    pub fn preorder(&self) -> impl Iterator<Item = DomNode> + '_ {
        (0..self.node_count()).map(move |i| {
            self.node_at_preorder(i)
                .expect("preorder indices below node_count are valid")
        })
    }

    /// Number of nodes whose tag equals `label`.
    pub fn count_label(&self, label: &str) -> usize {
        match self.tag_names.iter().position(|t| t == label) {
            Some(id) => self.labels.iter().filter(|&&l| l == id as u32).count(),
            None => 0,
        }
    }

    /// Reconstructs the pointer-based [`XmlTree`] (used by round-trip tests).
    pub fn to_xml(&self) -> XmlTree {
        let root = self.root();
        let mut xml = XmlTree::new(self.label(root));
        let mut stack: Vec<(DomNode, XmlNodeId)> = Vec::new();
        // Push children of the root in reverse so they are emitted in order.
        let mut children = Vec::new();
        let mut c = self.first_child(root);
        while let Some(x) = c {
            children.push(x);
            c = self.next_sibling(x);
        }
        for &ch in children.iter().rev() {
            stack.push((ch, xml.root()));
        }
        while let Some((v, parent)) = stack.pop() {
            let id = xml.add_child(parent, self.label(v));
            let mut children = Vec::new();
            let mut c = self.first_child(v);
            while let Some(x) = c {
                children.push(x);
                c = self.next_sibling(x);
            }
            for &ch in children.iter().rev() {
                stack.push((ch, id));
            }
        }
        xml
    }

    /// Approximate heap footprint in bytes: tree shape + label array + tag
    /// dictionary. This is the number the size-comparison experiment reports.
    pub fn size_bytes(&self) -> usize {
        self.shape.size_bytes()
            + self.labels.len() * std::mem::size_of::<u32>()
            + self
                .tag_names
                .iter()
                .map(|t| t.len() + std::mem::size_of::<String>())
                .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    /// Bits per node of the tree-shape component only (≈ 2 + o(1)).
    pub fn shape_bits_per_node(&self) -> f64 {
        8.0 * self.shape.size_bytes() as f64 / self.node_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse::parse_xml;

    fn sample() -> XmlTree {
        parse_xml(
            "<catalog><product><name/><price/><tags><tag/><tag/><tag/></tags></product>\
             <product><name/><price/></product><vendor><name/></vendor></catalog>",
        )
        .unwrap()
    }

    #[test]
    fn labels_follow_document_order() {
        let xml = sample();
        let dom = SuccinctDom::build(&xml);
        assert_eq!(dom.node_count(), xml.node_count());
        let expected: Vec<String> = xml
            .preorder()
            .iter()
            .map(|&n| xml.label(n).to_string())
            .collect();
        let got: Vec<String> = dom.preorder().map(|v| dom.label(v).to_string()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn navigation_mirrors_the_pointer_dom() {
        let xml = sample();
        let dom = SuccinctDom::build(&xml);
        let order = xml.preorder();
        for (i, &xn) in order.iter().enumerate() {
            let v = dom.node_at_preorder(i).unwrap();
            assert_eq!(dom.label(v), xml.label(xn));
            assert_eq!(dom.degree(v), xml.children(xn).len());
            assert_eq!(dom.is_leaf(v), xml.children(xn).is_empty());
            match xml.parent(xn) {
                Some(p) => {
                    let pi = order.iter().position(|&x| x == p).unwrap();
                    assert_eq!(dom.parent(v), dom.node_at_preorder(pi));
                }
                None => assert!(dom.parent(v).is_none()),
            }
        }
    }

    #[test]
    fn roundtrip_reconstructs_the_document() {
        let xml = sample();
        let dom = SuccinctDom::build(&xml);
        assert_eq!(dom.to_xml().to_xml(), xml.to_xml());
    }

    #[test]
    fn label_statistics() {
        let xml = sample();
        let dom = SuccinctDom::build(&xml);
        assert_eq!(dom.count_label("product"), 2);
        assert_eq!(dom.count_label("tag"), 3);
        assert_eq!(dom.count_label("name"), 3);
        assert_eq!(dom.count_label("absent"), 0);
        assert_eq!(dom.tag_count(), 7); // catalog, product, name, price, tags, tag, vendor
    }

    #[test]
    fn subtree_size_and_depth_match() {
        let xml = sample();
        let dom = SuccinctDom::build(&xml);
        let root = dom.root();
        assert_eq!(dom.subtree_size(root), xml.node_count());
        assert_eq!(dom.depth(root), 0);
        let tags_idx = xml
            .preorder()
            .iter()
            .position(|&n| xml.label(n) == "tags")
            .unwrap();
        let v = dom.node_at_preorder(tags_idx).unwrap();
        assert_eq!(dom.subtree_size(v), 4);
        assert_eq!(dom.depth(v), 2);
    }

    #[test]
    fn size_scales_with_node_count_not_with_content() {
        // A long repetitive list: pointer DOM costs ~70 bytes/node; succinct DOM
        // should be far below that (label array dominates at 4 bytes/node).
        let mut xml = XmlTree::new("log");
        let root = xml.root();
        for _ in 0..20_000 {
            let e = xml.add_child(root, "entry");
            xml.add_child(e, "timestamp");
            xml.add_child(e, "message");
        }
        let dom = SuccinctDom::build(&xml);
        let bytes_per_node = dom.size_bytes() as f64 / dom.node_count() as f64;
        assert!(
            bytes_per_node < 8.0,
            "succinct DOM should cost well under 8 bytes/node, got {bytes_per_node:.2}"
        );
        assert!(dom.shape_bits_per_node() < 4.0);
    }
}
