//! Balanced-parentheses (BP) encoding of ordered trees.
//!
//! A tree with `n` nodes is encoded as a sequence of `2n` parentheses produced
//! by a depth-first traversal: an opening parenthesis (`1` bit) when a node is
//! entered, a closing parenthesis (`0` bit) when it is left (Munro & Raman,
//! *Succinct Representation of Balanced Parentheses and Static Trees*). Every
//! node is identified by the position of its opening parenthesis.
//!
//! Matching (`find_close`, `find_open`) and enclosing (`enclose`) parentheses
//! are found with forward/backward *excess search*. Excess is the number of
//! open minus closed parentheses up to a position; because it changes by ±1 per
//! step, a word or block can be skipped whenever the target excess lies outside
//! the `[min, max]` excess range attained inside it. The structure stores these
//! per-word and per-block aggregates, giving `O(polylog)` searches in practice
//! while keeping the space at `2n + o(n)` bits plus the rank directory.

use crate::bitvector::{BitVector, BitVectorBuilder};
use xmltree::{XmlNodeId, XmlTree};

/// Number of 64-bit words aggregated per excess block (4096 parentheses).
const WORDS_PER_EXCESS_BLOCK: usize = 64;

/// A node of a [`BpTree`], identified by the position of its opening parenthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BpNode(pub usize);

/// A static ordered tree in balanced-parentheses form.
#[derive(Debug, Clone)]
pub struct BpTree {
    bits: BitVector,
    /// Total excess contributed by each word (fits in `i8`: at most ±64).
    word_total: Vec<i8>,
    /// Minimum prefix excess attained inside each word (relative to the word start).
    word_min: Vec<i8>,
    /// Maximum prefix excess attained inside each word (relative to the word start).
    word_max: Vec<i8>,
    /// Per-block aggregates over [`WORDS_PER_EXCESS_BLOCK`] words.
    block_total: Vec<i64>,
    block_min: Vec<i64>,
    block_max: Vec<i64>,
}

impl BpTree {
    /// Builds the BP encoding of an [`XmlTree`] by depth-first traversal.
    /// Node `i` of the BP tree corresponds to the `i`-th node of `xml` in
    /// document (preorder) order.
    pub fn from_xml(xml: &XmlTree) -> Self {
        let n = xml.node_count();
        let mut builder = BitVectorBuilder::with_capacity(2 * n);
        // Iterative DFS emitting open on entry, close after children.
        enum W {
            Enter(XmlNodeId),
            Leave,
        }
        let mut stack = vec![W::Enter(xml.root())];
        while let Some(w) = stack.pop() {
            match w {
                W::Enter(v) => {
                    builder.push(true);
                    stack.push(W::Leave);
                    for &c in xml.children(v).iter().rev() {
                        stack.push(W::Enter(c));
                    }
                }
                W::Leave => builder.push(false),
            }
        }
        Self::from_bitvector(builder.build())
    }

    /// Builds a BP tree from an already-encoded parenthesis sequence
    /// (`true` = open). The sequence must be balanced and non-empty.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        Self::from_bitvector(BitVector::from_bits(bits))
    }

    fn from_bitvector(bits: BitVector) -> Self {
        assert!(!bits.is_empty(), "a BP tree needs at least one node");
        assert_eq!(
            bits.count_ones(),
            bits.count_zeros(),
            "parenthesis sequence must be balanced"
        );
        let n_words = bits.len().div_ceil(64);
        let mut word_total = Vec::with_capacity(n_words);
        let mut word_min = Vec::with_capacity(n_words);
        let mut word_max = Vec::with_capacity(n_words);
        for w in 0..n_words {
            let mut excess: i8 = 0;
            let mut min = i8::MAX;
            let mut max = i8::MIN;
            let start = w * 64;
            let end = (start + 64).min(bits.len());
            for i in start..end {
                excess += if bits.get(i) { 1 } else { -1 };
                min = min.min(excess);
                max = max.max(excess);
            }
            word_total.push(excess);
            word_min.push(min);
            word_max.push(max);
        }
        let n_blocks = n_words.div_ceil(WORDS_PER_EXCESS_BLOCK);
        let mut block_total = Vec::with_capacity(n_blocks);
        let mut block_min = Vec::with_capacity(n_blocks);
        let mut block_max = Vec::with_capacity(n_blocks);
        for b in 0..n_blocks {
            let mut excess: i64 = 0;
            let mut min = i64::MAX;
            let mut max = i64::MIN;
            let start = b * WORDS_PER_EXCESS_BLOCK;
            let end = (start + WORDS_PER_EXCESS_BLOCK).min(n_words);
            for w in start..end {
                min = min.min(excess + word_min[w] as i64);
                max = max.max(excess + word_max[w] as i64);
                excess += word_total[w] as i64;
            }
            block_total.push(excess);
            block_min.push(min);
            block_max.push(max);
        }
        BpTree {
            bits,
            word_total,
            word_min,
            word_max,
            block_total,
            block_min,
            block_max,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Length of the parenthesis sequence (`2 * node_count`).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the tree is empty (never true: construction requires ≥ 1 node).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The underlying parenthesis bit vector.
    pub fn bits(&self) -> &BitVector {
        &self.bits
    }

    /// Whether position `i` holds an opening parenthesis.
    #[inline]
    pub fn is_open(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Excess (open minus closed parentheses) of positions `[0, i]`.
    #[inline]
    pub fn excess(&self, i: usize) -> i64 {
        2 * self.bits.rank1(i + 1) as i64 - (i as i64 + 1)
    }

    /// Smallest position `j > from` with `excess(j) == target`, if any.
    fn fwd_search(&self, from: usize, target: i64) -> Option<usize> {
        let len = self.bits.len();
        let mut excess = self.excess(from);
        // Scan the remainder of `from`'s word bit by bit.
        let word_end = ((from / 64) + 1) * 64;
        let mut i = from + 1;
        while i < word_end.min(len) {
            excess += if self.bits.get(i) { 1 } else { -1 };
            if excess == target {
                return Some(i);
            }
            i += 1;
        }
        if i >= len {
            return None;
        }
        // Skip whole words / blocks whose excess range cannot contain the target.
        let mut word = i / 64;
        while word < self.word_total.len() {
            if word.is_multiple_of(WORDS_PER_EXCESS_BLOCK) {
                // Try to skip an entire block.
                let block = word / WORDS_PER_EXCESS_BLOCK;
                let lo = excess + self.block_min[block];
                let hi = excess + self.block_max[block];
                if target < lo || target > hi {
                    excess += self.block_total[block];
                    word += WORDS_PER_EXCESS_BLOCK;
                    continue;
                }
            }
            let lo = excess + self.word_min[word] as i64;
            let hi = excess + self.word_max[word] as i64;
            if target >= lo && target <= hi {
                // The answer is inside this word.
                let start = word * 64;
                let end = (start + 64).min(len);
                let mut e = excess;
                for j in start..end {
                    e += if self.bits.get(j) { 1 } else { -1 };
                    if e == target {
                        return Some(j);
                    }
                }
                unreachable!("excess range said the target is attainable in this word");
            }
            excess += self.word_total[word] as i64;
            word += 1;
        }
        None
    }

    /// Largest position `j < from` with `excess(j) == target`; `Some(-1)` stands
    /// for the imaginary position before the sequence (excess 0).
    fn bwd_search(&self, from: usize, target: i64) -> Option<i64> {
        // Scan the prefix of `from`'s word backwards bit by bit.
        let word_start = (from / 64) * 64;
        let mut excess = self.excess(from);
        let mut i = from as i64;
        while i > word_start as i64 {
            // excess(i-1) = excess(i) - delta(i)
            excess -= if self.bits.get(i as usize) { 1 } else { -1 };
            i -= 1;
            if excess == target {
                return Some(i);
            }
        }
        if i == 0 {
            // excess(-1) = 0
            return if target == 0 { Some(-1) } else { None };
        }
        // `excess` currently equals excess(word_start - 1 + something)? After the
        // loop, i == word_start and excess == excess(word_start ... ) hmm — after
        // the loop excess == excess(word_start) minus nothing: we decremented down
        // to excess(word_start). The remaining candidates are j < word_start.
        let mut word = (word_start / 64) as i64 - 1;
        // excess at the end of `word` (i.e. excess(word*64 + 63)) equals excess(word_start)
        // minus nothing — it *is* excess(word_start - 1)? No: excess(word_start) includes
        // the bit at word_start. Recompute cleanly from rank to avoid off-by-one.
        let mut end_excess = self.excess(word_start) - if self.bits.get(word_start) { 1 } else { -1 };
        // end_excess == excess(word_start - 1), the excess at the last position of `word`.
        while word >= 0 {
            let w = word as usize;
            if (w + 1).is_multiple_of(WORDS_PER_EXCESS_BLOCK) {
                // Try to skip the whole block ending at this word.
                let block = w / WORDS_PER_EXCESS_BLOCK;
                let start_excess = end_excess - self.block_total[block];
                let lo = start_excess + self.block_min[block];
                let hi = start_excess + self.block_max[block];
                // The block can be skipped when the target excess is attained
                // neither inside the block nor at the position just before it
                // (that position is re-checked while scanning the previous block).
                if (target < lo || target > hi) && target != start_excess {
                    end_excess = start_excess;
                    word -= WORDS_PER_EXCESS_BLOCK as i64;
                    continue;
                }
            }
            let start_excess = end_excess - self.word_total[w] as i64;
            let lo = start_excess + self.word_min[w] as i64;
            let hi = start_excess + self.word_max[w] as i64;
            if (target >= lo && target <= hi) || target == start_excess {
                // Scan this word backwards.
                let start = w * 64;
                let mut e = end_excess;
                let mut j = (start + 63).min(self.bits.len() - 1) as i64;
                while j >= start as i64 {
                    if e == target {
                        return Some(j);
                    }
                    e -= if self.bits.get(j as usize) { 1 } else { -1 };
                    j -= 1;
                }
                if e == target {
                    // excess(start - 1)
                    return Some(start as i64 - 1);
                }
            }
            end_excess = start_excess;
            word -= 1;
        }
        if target == 0 {
            Some(-1)
        } else {
            None
        }
    }

    /// Position of the closing parenthesis matching the open parenthesis at `i`.
    pub fn find_close(&self, i: usize) -> usize {
        debug_assert!(self.is_open(i), "find_close expects an open parenthesis");
        self.fwd_search(i, self.excess(i) - 1)
            .expect("balanced sequence always has a matching close")
    }

    /// Position of the opening parenthesis matching the close parenthesis at `j`.
    pub fn find_open(&self, j: usize) -> usize {
        debug_assert!(!self.is_open(j), "find_open expects a closing parenthesis");
        let r = self
            .bwd_search(j, self.excess(j))
            .expect("balanced sequence always has a matching open");
        (r + 1) as usize
    }

    /// Opening parenthesis of the node enclosing the node at open position `i`
    /// (its parent), or `None` for the root.
    pub fn enclose(&self, i: usize) -> Option<usize> {
        debug_assert!(self.is_open(i), "enclose expects an open parenthesis");
        if i == 0 {
            return None;
        }
        let r = self.bwd_search(i, self.excess(i) - 2)?;
        Some((r + 1) as usize)
    }

    // ----- tree navigation -----

    /// The root node.
    pub fn root(&self) -> BpNode {
        BpNode(0)
    }

    /// Whether `v` is a leaf.
    pub fn is_leaf(&self, v: BpNode) -> bool {
        !self.bits.get(v.0 + 1)
    }

    /// First child of `v` in document order.
    pub fn first_child(&self, v: BpNode) -> Option<BpNode> {
        if self.bits.get(v.0 + 1) {
            Some(BpNode(v.0 + 1))
        } else {
            None
        }
    }

    /// Next sibling of `v`.
    pub fn next_sibling(&self, v: BpNode) -> Option<BpNode> {
        let close = self.find_close(v.0);
        let next = close + 1;
        if next < self.bits.len() && self.bits.get(next) {
            Some(BpNode(next))
        } else {
            None
        }
    }

    /// Parent of `v` (`None` for the root).
    pub fn parent(&self, v: BpNode) -> Option<BpNode> {
        self.enclose(v.0).map(BpNode)
    }

    /// Number of nodes in the subtree rooted at `v`.
    pub fn subtree_size(&self, v: BpNode) -> usize {
        (self.find_close(v.0) - v.0).div_ceil(2)
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: BpNode) -> usize {
        (self.excess(v.0) - 1) as usize
    }

    /// Number of children of `v`.
    pub fn degree(&self, v: BpNode) -> usize {
        let mut n = 0;
        let mut child = self.first_child(v);
        while let Some(c) = child {
            n += 1;
            child = self.next_sibling(c);
        }
        n
    }

    /// 0-based preorder index of `v`.
    pub fn preorder_index(&self, v: BpNode) -> usize {
        self.bits.rank1(v.0) as usize
    }

    /// Node with the given 0-based preorder index.
    pub fn node_at_preorder(&self, index: usize) -> Option<BpNode> {
        self.bits.select1(index as u64 + 1).map(BpNode)
    }

    /// 0-based postorder index of `v`: the rank of its *closing* parenthesis
    /// among all closing parentheses.
    pub fn postorder_index(&self, v: BpNode) -> usize {
        self.bits.rank0(self.find_close(v.0)) as usize
    }

    /// Node with the given 0-based postorder index — the inverse of
    /// [`BpTree::postorder_index`], one sampled `select0` plus a backward
    /// excess search.
    pub fn node_at_postorder(&self, index: usize) -> Option<BpNode> {
        let close = self.bits.select0(index as u64 + 1)?;
        Some(BpNode(self.find_open(close)))
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.size_bytes()
            + self.word_total.len() * 3
            + self.block_total.len() * 8 * 3
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse::parse_xml;

    /// Naive matching-parenthesis computation used as the oracle.
    fn naive_find_close(bits: &[bool], i: usize) -> usize {
        let mut depth = 0i64;
        for (j, &b) in bits.iter().enumerate().skip(i) {
            depth += if b { 1 } else { -1 };
            if depth == 0 {
                return j;
            }
        }
        panic!("unbalanced");
    }

    fn sample_doc() -> XmlTree {
        parse_xml(
            "<library><section><book><title/><chapter/><chapter/></book><book><title/></book>\
             </section><section><journal/><journal/><journal/></section><index/></library>",
        )
        .unwrap()
    }

    fn bits_of(t: &BpTree) -> Vec<bool> {
        (0..t.len()).map(|i| t.is_open(i)).collect()
    }

    #[test]
    fn builds_balanced_sequence_from_xml() {
        let xml = sample_doc();
        let bp = BpTree::from_xml(&xml);
        assert_eq!(bp.node_count(), xml.node_count());
        assert_eq!(bp.len(), 2 * xml.node_count());
        assert!(!bp.is_empty());
        // Sequence is balanced: excess at the end is zero, never negative.
        let bits = bits_of(&bp);
        let mut e = 0i64;
        for b in bits {
            e += if b { 1 } else { -1 };
            assert!(e >= 0);
        }
        assert_eq!(e, 0);
    }

    #[test]
    fn find_close_and_open_match_naive() {
        let xml = sample_doc();
        let bp = BpTree::from_xml(&xml);
        let bits = bits_of(&bp);
        for i in 0..bits.len() {
            if bits[i] {
                let close = naive_find_close(&bits, i);
                assert_eq!(bp.find_close(i), close, "find_close({i})");
                assert_eq!(bp.find_open(close), i, "find_open({close})");
            }
        }
    }

    #[test]
    fn navigation_matches_the_pointer_tree() {
        let xml = sample_doc();
        let bp = BpTree::from_xml(&xml);
        let order = xml.preorder();
        // preorder index <-> BP node correspondence
        for (idx, &xn) in order.iter().enumerate() {
            let v = bp.node_at_preorder(idx).unwrap();
            assert_eq!(bp.preorder_index(v), idx);
            assert_eq!(bp.degree(v), xml.children(xn).len(), "degree at {idx}");
            assert_eq!(bp.is_leaf(v), xml.children(xn).is_empty());
            // first child
            match xml.children(xn).first() {
                Some(&c) => {
                    let child = bp.first_child(v).unwrap();
                    let child_idx = order.iter().position(|&x| x == c).unwrap();
                    assert_eq!(bp.preorder_index(child), child_idx);
                }
                None => assert!(bp.first_child(v).is_none()),
            }
            // parent
            match xml.parent(xn) {
                Some(p) => {
                    let parent = bp.parent(v).unwrap();
                    let p_idx = order.iter().position(|&x| x == p).unwrap();
                    assert_eq!(bp.preorder_index(parent), p_idx);
                }
                None => assert!(bp.parent(v).is_none()),
            }
        }
    }

    #[test]
    fn next_sibling_walks_each_child_list() {
        let xml = sample_doc();
        let bp = BpTree::from_xml(&xml);
        let order = xml.preorder();
        for (idx, &xn) in order.iter().enumerate() {
            let v = bp.node_at_preorder(idx).unwrap();
            let mut got = Vec::new();
            let mut child = bp.first_child(v);
            while let Some(c) = child {
                got.push(bp.preorder_index(c));
                child = bp.next_sibling(c);
            }
            let want: Vec<usize> = xml
                .children(xn)
                .iter()
                .map(|c| order.iter().position(|x| x == c).unwrap())
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn postorder_addressing_matches_the_pointer_tree() {
        let xml = sample_doc();
        let bp = BpTree::from_xml(&xml);
        // Postorder oracle on the pointer tree.
        fn postorder(xml: &XmlTree, n: XmlNodeId, out: &mut Vec<XmlNodeId>) {
            for &c in xml.children(n) {
                postorder(xml, c, out);
            }
            out.push(n);
        }
        let mut post = Vec::new();
        postorder(&xml, xml.root(), &mut post);
        let pre = xml.preorder();
        for (pi, &xn) in post.iter().enumerate() {
            let pre_idx = pre.iter().position(|&x| x == xn).unwrap();
            let v = bp.node_at_preorder(pre_idx).unwrap();
            assert_eq!(bp.postorder_index(v), pi, "postorder index of {pre_idx}");
            assert_eq!(bp.node_at_postorder(pi), Some(v), "node at postorder {pi}");
        }
        assert_eq!(bp.node_at_postorder(xml.node_count()), None);
    }

    #[test]
    fn subtree_size_and_depth() {
        let xml = sample_doc();
        let bp = BpTree::from_xml(&xml);
        let root = bp.root();
        assert_eq!(bp.subtree_size(root), xml.node_count());
        assert_eq!(bp.depth(root), 0);
        // <title/> under the first book has depth 3 and subtree size 1.
        let order = xml.preorder();
        let title_idx = order
            .iter()
            .position(|&n| xml.label(n) == "title")
            .unwrap();
        let v = bp.node_at_preorder(title_idx).unwrap();
        assert_eq!(bp.depth(v), 3);
        assert_eq!(bp.subtree_size(v), 1);
    }

    #[test]
    fn single_node_tree() {
        let xml = parse_xml("<only/>").unwrap();
        let bp = BpTree::from_xml(&xml);
        assert_eq!(bp.node_count(), 1);
        let root = bp.root();
        assert!(bp.is_leaf(root));
        assert!(bp.first_child(root).is_none());
        assert!(bp.next_sibling(root).is_none());
        assert!(bp.parent(root).is_none());
        assert_eq!(bp.subtree_size(root), 1);
    }

    #[test]
    fn deep_chain_crosses_many_words() {
        // A chain of 5000 nodes: the parenthesis sequence is 5000 opens followed
        // by 5000 closes, exercising block skipping in fwd/bwd search.
        let mut xml = XmlTree::new("n0");
        let mut cur = xml.root();
        for i in 1..5000 {
            cur = xml.add_child(cur, &format!("n{i}"));
        }
        let bp = BpTree::from_xml(&xml);
        assert_eq!(bp.find_close(0), 2 * 5000 - 1);
        assert_eq!(bp.find_open(2 * 5000 - 1), 0);
        let deepest = bp.node_at_preorder(4999).unwrap();
        assert_eq!(bp.depth(deepest), 4999);
        assert_eq!(bp.parent(deepest).map(|p| bp.preorder_index(p)), Some(4998));
        assert_eq!(bp.subtree_size(deepest), 1);
    }

    #[test]
    fn wide_star_crosses_many_words() {
        let mut xml = XmlTree::new("root");
        let root = xml.root();
        for i in 0..5000 {
            xml.add_child(root, &format!("c{}", i % 3));
        }
        let bp = BpTree::from_xml(&xml);
        assert_eq!(bp.degree(bp.root()), 5000);
        // Walk the sibling chain from the first to the last child.
        let mut v = bp.first_child(bp.root()).unwrap();
        let mut count = 1;
        while let Some(next) = bp.next_sibling(v) {
            v = next;
            count += 1;
        }
        assert_eq!(count, 5000);
        assert_eq!(bp.parent(v), Some(bp.root()));
    }

    #[test]
    fn size_is_roughly_two_bits_per_node() {
        let mut xml = XmlTree::new("root");
        let root = xml.root();
        for _ in 0..50_000 {
            xml.add_child(root, "item");
        }
        let bp = BpTree::from_xml(&xml);
        let bits_per_node = 8.0 * bp.size_bytes() as f64 / bp.node_count() as f64;
        assert!(
            bits_per_node < 4.0,
            "BP should be close to 2 bits/node, got {bits_per_node:.2}"
        );
    }
}
