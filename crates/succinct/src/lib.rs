//! # succinct-xml — succinct tree representations
//!
//! Succinct (pointer-free) tree data structures, reproducing the *static*
//! related-work baseline discussed in the ICDE 2016 paper *Incremental Updates
//! on Compressed XML* (Section "Related Work", references \[12\]–\[15\]):
//! Munro–Raman balanced-parentheses trees and the engineering of a succinct DOM
//! à la Delpratt, Raman and Rahman.
//!
//! The paper's argument is that succinct trees give a compact, navigable
//! in-memory representation of an XML document but — unlike SLCF grammars with
//! GrammarRePair — do **not** support efficient updates (dynamic succinct trees
//! "are more complicated and efficient implementations are still missing").
//! This crate provides exactly that static baseline, so the benchmark harness
//! can compare:
//!
//! * in-memory size: succinct DOM (≈ 2 bits per node + label array) versus an
//!   SLCF grammar (which exploits *repetition*, not just pointer elimination),
//! * navigation speed: first-child / next-sibling / parent on the succinct DOM
//!   versus the grammar-compressed cursor of `grammar-repair::navigate`.
//!
//! ## Modules
//!
//! * [`bitvector`] — plain bit vectors with constant-time `rank` and
//!   logarithmic `select` support,
//! * [`bp`] — balanced-parentheses encoding of an ordered tree with
//!   `find_close` / `find_open` / `enclose` via a min-excess tree,
//! * [`louds`] — the level-order unary degree sequence encoding,
//! * [`dom`] — [`dom::SuccinctDom`], a navigable, labelled, read-only XML DOM
//!   built from balanced parentheses plus a label array.
//!
//! ## Example
//!
//! ```
//! use succinct_xml::dom::SuccinctDom;
//! use xmltree::parse::parse_xml;
//!
//! let doc = parse_xml("<library><book><chapter/></book><book/></library>").unwrap();
//! let dom = SuccinctDom::build(&doc);
//! let root = dom.root();
//! assert_eq!(dom.label(root), "library");
//! let first_book = dom.first_child(root).unwrap();
//! assert_eq!(dom.label(first_book), "book");
//! assert_eq!(dom.degree(root), 2);
//! assert!(dom.size_bytes() > 0);
//! ```

#![warn(missing_docs)]

pub mod bitvector;
pub mod bp;
pub mod dom;
pub mod louds;

pub use bitvector::BitVector;
pub use bp::BpTree;
pub use dom::SuccinctDom;
pub use louds::LoudsTree;
