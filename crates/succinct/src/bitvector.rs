//! Bit vectors with rank and select support.
//!
//! The representation follows the classic two-level rank directory: bits are
//! packed into `u64` words, and a cumulative popcount is stored for every
//! *block* of [`WORDS_PER_BLOCK`] words. `rank1` is then a block lookup, at most
//! seven word popcounts, and one masked popcount — constant time for all
//! practical purposes.
//!
//! `select1` and `select0` additionally use *sampled select directories*: the
//! block index of every [`SELECT_SAMPLE`]-th one (respectively zero) is stored
//! at build time, so a query jumps straight to the sampled block of
//! `⌊(k−1)/SELECT_SAMPLE⌋` and only has to search between two consecutive
//! samples instead of binary-searching the whole rank directory (which cost
//! O(log n) per call and dominated `select`-heavy navigation). On vectors
//! where the queried symbol is dense, consecutive samples are a handful of
//! blocks apart, making the query effectively constant time; each directory
//! costs one `u32` per [`SELECT_SAMPLE`] occurrences (≤ 0.07 bits per bit).
//! The zero directory is what LOUDS navigation leans on — every
//! `degree`/`child`/`first_child` step selects the terminating `0` of a unary
//! degree sequence — so it is built with the same machinery as the one
//! directory and pinned to the rank-directory binary search
//! ([`BitVector::select0_rank_search`]) by the property tests.

/// Number of 64-bit words per rank-directory block (512 bits per block).
pub const WORDS_PER_BLOCK: usize = 8;

/// Sampling rate of the select directory: one block pointer per this many ones.
pub const SELECT_SAMPLE: u64 = 512;

/// An immutable bit vector with rank/select support.
///
/// Positions are 0-based. `rank1(i)` counts ones strictly before position `i`;
/// `select1(k)` returns the position of the `k`-th one (1-based), mirroring the
/// conventions of Navarro's *Compact Data Structures*.
#[derive(Debug, Clone)]
pub struct BitVector {
    words: Vec<u64>,
    len: usize,
    /// `block_ranks[b]` = number of ones in words `[0, b * WORDS_PER_BLOCK)`.
    block_ranks: Vec<u64>,
    /// `select_samples[j]` = index of the block containing the
    /// `j * SELECT_SAMPLE + 1`-th one (1-based ones).
    select_samples: Vec<u32>,
    /// `select0_samples[j]` = index of the block containing the
    /// `j * SELECT_SAMPLE + 1`-th zero (1-based zeros).
    select0_samples: Vec<u32>,
    ones: u64,
}

/// Incrementally builds a [`BitVector`].
#[derive(Debug, Clone, Default)]
pub struct BitVectorBuilder {
    words: Vec<u64>,
    len: usize,
}

impl BitVectorBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitVectorBuilder {
            words: Vec::with_capacity(bits / 64 + 1),
            len: 0,
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let offset = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << offset;
        }
        self.len += 1;
    }

    /// Number of bits appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finalizes the bit vector and builds its rank directory.
    pub fn build(self) -> BitVector {
        BitVector::from_words(self.words, self.len)
    }
}

impl BitVector {
    /// Builds a bit vector from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut b = BitVectorBuilder::new();
        for bit in bits {
            b.push(bit);
        }
        b.build()
    }

    /// Builds a bit vector from packed words and a bit length.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        // Zero any bits beyond `len` so popcounts are exact.
        let needed = len.div_ceil(64);
        words.truncate(needed);
        while words.len() < needed {
            words.push(0);
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                let keep = len % 64;
                *last &= (1u64 << keep) - 1;
            }
        }
        let blocks = words.len() / WORDS_PER_BLOCK + 1;
        let mut block_ranks = Vec::with_capacity(blocks + 1);
        let mut acc: u64 = 0;
        for (i, w) in words.iter().enumerate() {
            if i % WORDS_PER_BLOCK == 0 {
                block_ranks.push(acc);
            }
            acc += w.count_ones() as u64;
        }
        // Sentinel block covering the tail.
        block_ranks.push(acc);
        // Select directories: one linear sweep over the block ranks each.
        let mut select_samples = Vec::with_capacity((acc / SELECT_SAMPLE) as usize + 1);
        let mut block = 0usize;
        let mut k = 1u64;
        while k <= acc {
            while block_ranks[block + 1] < k {
                block += 1;
            }
            select_samples.push(block as u32);
            k += SELECT_SAMPLE;
        }
        // The zero directory counts zeros by word arithmetic; padding zeros of
        // the last partial word sit beyond every real zero, so the sweep is
        // bounded by the true zero count.
        let zeros = len as u64 - acc;
        let zeros_before = |b: usize| {
            ((b * WORDS_PER_BLOCK * 64).min(words.len() * 64)) as u64 - block_ranks[b]
        };
        let mut select0_samples = Vec::with_capacity((zeros / SELECT_SAMPLE) as usize + 1);
        let mut block = 0usize;
        let mut k = 1u64;
        while k <= zeros {
            while zeros_before(block + 1) < k {
                block += 1;
            }
            select0_samples.push(block as u32);
            k += SELECT_SAMPLE;
        }
        BitVector {
            words,
            len,
            block_ranks,
            select_samples,
            select0_samples,
            ones: acc,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of one bits.
    #[inline]
    pub fn count_ones(&self) -> u64 {
        self.ones
    }

    /// Number of zero bits.
    #[inline]
    pub fn count_zeros(&self) -> u64 {
        self.len as u64 - self.ones
    }

    /// The bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of ones in positions `[0, i)`. `i` may equal `len`.
    pub fn rank1(&self, i: usize) -> u64 {
        assert!(i <= self.len, "rank index {i} out of range (len {})", self.len);
        let word = i / 64;
        let block = word / WORDS_PER_BLOCK;
        let mut r = self.block_ranks[block.min(self.block_ranks.len() - 1)];
        for w in (block * WORDS_PER_BLOCK)..word {
            r += self.words[w].count_ones() as u64;
        }
        let offset = i % 64;
        if offset > 0 && word < self.words.len() {
            let mask = (1u64 << offset) - 1;
            r += (self.words[word] & mask).count_ones() as u64;
        }
        r
    }

    /// Number of zeros in positions `[0, i)`.
    pub fn rank0(&self, i: usize) -> u64 {
        i as u64 - self.rank1(i)
    }

    /// Position of the `k`-th one (1-based). Returns `None` if `k` is 0 or
    /// exceeds the number of ones.
    ///
    /// The sampled select directory bounds the block search to the gap between
    /// two consecutive samples, so the query is O(1) for all practical
    /// densities instead of a binary search over the whole rank directory.
    pub fn select1(&self, k: u64) -> Option<usize> {
        if k == 0 || k > self.ones {
            return None;
        }
        // The k-th one lies at or after the sampled block of its group, and at
        // or before the next group's sampled block.
        let group = ((k - 1) / SELECT_SAMPLE) as usize;
        let mut lo = self.select_samples[group] as usize;
        let mut hi = self
            .select_samples
            .get(group + 1)
            .map(|&b| b as usize)
            .unwrap_or(self.block_ranks.len() - 2);
        // Bounded search for the last block with rank < k (the span is a few
        // blocks on dense vectors; degenerate sparsity stays logarithmic in
        // the span, never in the whole directory).
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.block_ranks[mid] < k {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Some(self.select1_in_block(lo, k))
    }

    /// Reference implementation of `select1` that binary-searches the whole
    /// rank directory, bypassing the select directory. Kept for the property
    /// tests that pin the sampled directory to the rank-only answer.
    #[doc(hidden)]
    pub fn select1_rank_search(&self, k: u64) -> Option<usize> {
        if k == 0 || k > self.ones {
            return None;
        }
        let mut lo = 0usize;
        let mut hi = self.block_ranks.len() - 1;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.block_ranks[mid] < k {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Some(self.select1_in_block(lo, k))
    }

    /// Finishes a select query inside block `block` (which must contain the
    /// `k`-th one): scan at most [`WORDS_PER_BLOCK`] words.
    fn select1_in_block(&self, block: usize, k: u64) -> usize {
        let mut remaining = k - self.block_ranks[block];
        let mut word = block * WORDS_PER_BLOCK;
        loop {
            let ones = self.words[word].count_ones() as u64;
            if remaining <= ones {
                break;
            }
            remaining -= ones;
            word += 1;
        }
        word * 64 + select_in_word(self.words[word], remaining)
    }

    /// Number of zeros in words strictly before block `b` (padding zeros of
    /// the last partial word included — they sit beyond every real zero, so
    /// bounded searches against the true zero count never reach them).
    #[inline]
    fn zeros_before_block(&self, b: usize) -> u64 {
        ((b * WORDS_PER_BLOCK * 64).min(self.words.len() * 64)) as u64 - self.block_ranks[b]
    }

    /// Position of the `k`-th zero (1-based). Returns `None` if `k` is 0 or
    /// exceeds the number of zeros.
    ///
    /// Mirrors [`BitVector::select1`]: the sampled zero directory bounds the
    /// block search to the gap between two consecutive samples, so the query
    /// is O(1) for all practical densities instead of a binary search over
    /// the whole rank directory.
    pub fn select0(&self, k: u64) -> Option<usize> {
        if k == 0 || k > self.count_zeros() {
            return None;
        }
        let group = ((k - 1) / SELECT_SAMPLE) as usize;
        let lo = self.select0_samples[group] as usize;
        let hi = self
            .select0_samples
            .get(group + 1)
            .map(|&b| b as usize)
            .unwrap_or(self.block_ranks.len() - 2);
        let block = self.select0_block_search(lo, hi, k);
        Some(self.select0_in_block(block, k))
    }

    /// Reference implementation of `select0` that binary-searches the whole
    /// rank directory, bypassing the zero directory. Kept for the property
    /// tests that pin the sampled directory to the rank-only answer.
    #[doc(hidden)]
    pub fn select0_rank_search(&self, k: u64) -> Option<usize> {
        if k == 0 || k > self.count_zeros() {
            return None;
        }
        let block = self.select0_block_search(0, self.block_ranks.len() - 1, k);
        Some(self.select0_in_block(block, k))
    }

    /// Last block in `[lo, hi]` with fewer than `k` zeros before it — shared
    /// by the sampled query (sample-bounded range) and the rank-search oracle
    /// (whole directory).
    fn select0_block_search(&self, mut lo: usize, mut hi: usize, k: u64) -> usize {
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.zeros_before_block(mid) < k {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }

    /// Finishes a zero-select query inside block `block` (which must contain
    /// the `k`-th zero): scan at most [`WORDS_PER_BLOCK`] words.
    fn select0_in_block(&self, block: usize, k: u64) -> usize {
        let mut remaining = k - self.zeros_before_block(block);
        let mut word = block * WORDS_PER_BLOCK;
        loop {
            let zeros = self.words[word].count_zeros() as u64;
            if remaining <= zeros {
                break;
            }
            remaining -= zeros;
            word += 1;
        }
        let pos = word * 64 + select_in_word(!self.words[word], remaining);
        debug_assert!(pos < self.len, "k <= count_zeros() keeps the scan before the padding");
        pos
    }

    /// Approximate heap footprint in bytes (words + rank directory + both
    /// select directories).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
            + self.block_ranks.len() * 8
            + self.select_samples.len() * 4
            + self.select0_samples.len() * 4
            + std::mem::size_of::<Self>()
    }
}

/// Position (0-based, within the word) of the `k`-th set bit of `word`
/// (`k` is 1-based). The caller guarantees the word has at least `k` ones.
fn select_in_word(mut word: u64, k: u64) -> usize {
    debug_assert!(k >= 1 && word.count_ones() as u64 >= k);
    let mut remaining = k;
    loop {
        let tz = word.trailing_zeros() as usize;
        if remaining == 1 {
            return tz;
        }
        word &= word - 1; // clear lowest set bit
        remaining -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank1(bits: &[bool], i: usize) -> u64 {
        bits[..i].iter().filter(|&&b| b).count() as u64
    }

    fn naive_select1(bits: &[bool], k: u64) -> Option<usize> {
        let mut seen = 0;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                seen += 1;
                if seen == k {
                    return Some(i);
                }
            }
        }
        None
    }

    fn naive_select0(bits: &[bool], k: u64) -> Option<usize> {
        let mut seen = 0;
        for (i, &b) in bits.iter().enumerate() {
            if !b {
                seen += 1;
                if seen == k {
                    return Some(i);
                }
            }
        }
        None
    }

    fn pattern(n: usize) -> Vec<bool> {
        // Deterministic irregular pattern mixing long runs and alternations.
        (0..n)
            .map(|i| (i * i + i / 3) % 7 < 3 || (i / 97) % 5 == 0)
            .collect()
    }

    #[test]
    fn empty_vector() {
        let bv = BitVector::from_bits(std::iter::empty());
        assert_eq!(bv.len(), 0);
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.rank1(0), 0);
        assert_eq!(bv.select1(1), None);
        assert_eq!(bv.select0(1), None);
    }

    #[test]
    fn small_handbuilt_vector() {
        // 1 0 1 1 0 0 1
        let bits = vec![true, false, true, true, false, false, true];
        let bv = BitVector::from_bits(bits.clone());
        assert_eq!(bv.len(), 7);
        assert_eq!(bv.count_ones(), 4);
        assert_eq!(bv.count_zeros(), 3);
        for i in 0..=7 {
            assert_eq!(bv.rank1(i), naive_rank1(&bits, i), "rank1({i})");
            assert_eq!(bv.rank0(i), i as u64 - naive_rank1(&bits, i), "rank0({i})");
        }
        assert_eq!(bv.select1(1), Some(0));
        assert_eq!(bv.select1(2), Some(2));
        assert_eq!(bv.select1(4), Some(6));
        assert_eq!(bv.select1(5), None);
        assert_eq!(bv.select0(1), Some(1));
        assert_eq!(bv.select0(3), Some(5));
        assert_eq!(bv.select0(4), None);
        assert!(bv.get(0) && !bv.get(1) && bv.get(6));
    }

    #[test]
    fn rank_matches_naive_across_block_boundaries() {
        for n in [1usize, 63, 64, 65, 511, 512, 513, 1500, 4096] {
            let bits = pattern(n);
            let bv = BitVector::from_bits(bits.clone());
            for i in (0..=n).step_by(7) {
                assert_eq!(bv.rank1(i), naive_rank1(&bits, i), "n={n}, i={i}");
            }
            assert_eq!(bv.rank1(n), naive_rank1(&bits, n));
        }
    }

    #[test]
    fn select_matches_naive_across_block_boundaries() {
        for n in [1usize, 64, 65, 511, 512, 513, 1500, 4096] {
            let bits = pattern(n);
            let bv = BitVector::from_bits(bits.clone());
            let ones = bv.count_ones();
            for k in 1..=ones {
                assert_eq!(bv.select1(k), naive_select1(&bits, k), "n={n}, k={k}");
            }
            assert_eq!(bv.select1(ones + 1), None);
            let zeros = bv.count_zeros();
            for k in (1..=zeros).step_by(3) {
                assert_eq!(bv.select0(k), naive_select0(&bits, k), "n={n}, k={k}");
            }
            assert_eq!(bv.select0(zeros + 1), None);
        }
    }

    #[test]
    fn sampled_select_matches_rank_search_across_densities() {
        // Dense, sparse and clustered vectors, all crossing several sample
        // groups (> SELECT_SAMPLE ones) and block boundaries.
        let dense: Vec<bool> = (0..40_000).map(|i| i % 3 != 0).collect();
        let sparse: Vec<bool> = (0..200_000).map(|i| i % 331 == 7).collect();
        let clustered: Vec<bool> = (0..60_000).map(|i| (i / 700) % 2 == 0).collect();
        for bits in [dense, sparse, clustered] {
            let bv = BitVector::from_bits(bits.iter().copied());
            assert!(bv.count_ones() > SELECT_SAMPLE, "test must span samples");
            for k in (1..=bv.count_ones()).step_by(13) {
                assert_eq!(bv.select1(k), bv.select1_rank_search(k), "k={k}");
            }
            assert_eq!(bv.select1(bv.count_ones()), bv.select1_rank_search(bv.count_ones()));
            assert_eq!(bv.select1(bv.count_ones() + 1), None);
        }
    }

    #[test]
    fn sampled_select0_matches_rank_search_across_densities() {
        // Mirror of the select1 pinning test for the zero directory: vectors
        // where zeros are dense, sparse and clustered, all spanning several
        // sample groups.
        let zeros_dense: Vec<bool> = (0..40_000).map(|i| i % 3 == 0).collect();
        let zeros_sparse: Vec<bool> = (0..200_000).map(|i| i % 331 != 7).collect();
        let clustered: Vec<bool> = (0..60_000).map(|i| (i / 700) % 2 == 0).collect();
        for bits in [zeros_dense, zeros_sparse, clustered] {
            let bv = BitVector::from_bits(bits.iter().copied());
            assert!(bv.count_zeros() > SELECT_SAMPLE, "test must span samples");
            for k in (1..=bv.count_zeros()).step_by(13) {
                assert_eq!(bv.select0(k), bv.select0_rank_search(k), "k={k}");
                assert_eq!(bv.select0(k), naive_select0(&bits, k), "k={k}");
            }
            assert_eq!(
                bv.select0(bv.count_zeros()),
                bv.select0_rank_search(bv.count_zeros())
            );
            assert_eq!(bv.select0(bv.count_zeros() + 1), None);
        }
    }

    #[test]
    fn select0_samples_exactly_at_group_boundaries() {
        // Zeros exactly at multiples of SELECT_SAMPLE stress the group index
        // arithmetic, including the last partial word's padding zeros.
        let bits: Vec<bool> =
            (0..(SELECT_SAMPLE as usize * 70 + 13)).map(|i| i % 2 == 1).collect();
        let bv = BitVector::from_bits(bits.iter().copied());
        for j in 1..=3u64 {
            for k in [j * SELECT_SAMPLE, j * SELECT_SAMPLE + 1] {
                assert_eq!(bv.select0(k), naive_select0(&bits, k), "k={k}");
            }
        }
        let zeros = bv.count_zeros();
        assert_eq!(bv.select0(zeros), naive_select0(&bits, zeros));
        assert_eq!(bv.select0(zeros + 1), None);
    }

    #[test]
    fn rank0_and_select0_are_inverse() {
        let bits = pattern(2000);
        let bv = BitVector::from_bits(bits);
        for k in 1..=bv.count_zeros() {
            let pos = bv.select0(k).unwrap();
            assert!(!bv.get(pos));
            assert_eq!(bv.rank0(pos), k - 1);
            assert_eq!(bv.rank0(pos + 1), k);
        }
    }

    #[test]
    fn select_samples_exactly_at_group_boundaries() {
        // Ones exactly at multiples of SELECT_SAMPLE stress the group index
        // arithmetic (k = j*SAMPLE and k = j*SAMPLE + 1).
        let bits: Vec<bool> = (0..(SELECT_SAMPLE as usize * 70)).map(|i| i % 2 == 0).collect();
        let bv = BitVector::from_bits(bits.iter().copied());
        for j in 1..=3u64 {
            for k in [j * SELECT_SAMPLE, j * SELECT_SAMPLE + 1] {
                assert_eq!(bv.select1(k), naive_select1(&bits, k), "k={k}");
            }
        }
    }

    #[test]
    fn rank_and_select_are_inverse() {
        let bits = pattern(2000);
        let bv = BitVector::from_bits(bits);
        for k in 1..=bv.count_ones() {
            let pos = bv.select1(k).unwrap();
            assert!(bv.get(pos));
            assert_eq!(bv.rank1(pos), k - 1);
            assert_eq!(bv.rank1(pos + 1), k);
        }
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let bv = BitVector::from_bits(std::iter::repeat_n(true, 300));
        assert_eq!(bv.count_ones(), 300);
        assert_eq!(bv.select1(300), Some(299));
        assert_eq!(bv.select0(1), None);
        let bv = BitVector::from_bits(std::iter::repeat_n(false, 300));
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.select0(300), Some(299));
        assert_eq!(bv.select1(1), None);
    }

    #[test]
    fn builder_and_from_words_agree() {
        let bits = pattern(777);
        let mut builder = BitVectorBuilder::with_capacity(777);
        for &b in &bits {
            builder.push(b);
        }
        assert_eq!(builder.len(), 777);
        assert!(!builder.is_empty());
        let a = builder.build();
        let b = BitVector::from_bits(bits);
        assert_eq!(a.count_ones(), b.count_ones());
        for i in 0..=777 {
            assert_eq!(a.rank1(i), b.rank1(i));
        }
    }

    #[test]
    fn from_words_masks_trailing_garbage() {
        // Words carry set bits beyond the declared length; they must be ignored.
        let bv = BitVector::from_words(vec![u64::MAX], 3);
        assert_eq!(bv.len(), 3);
        assert_eq!(bv.count_ones(), 3);
        assert_eq!(bv.rank1(3), 3);
    }

    #[test]
    fn size_bytes_is_close_to_one_bit_per_bit() {
        let bv = BitVector::from_bits(pattern(80_000));
        let bytes = bv.size_bytes();
        // 80 000 bits = 10 000 bytes; rank directory plus the two select
        // directories add a few percent.
        assert!((10_000..12_500).contains(&bytes), "unexpected size {bytes}");
    }
}
