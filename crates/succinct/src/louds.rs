//! LOUDS — level-order unary degree sequence encoding of ordered trees.
//!
//! LOUDS lists the nodes of the tree in breadth-first (level) order and encodes
//! the degree of each node in unary: a node with `d` children contributes
//! `1^d 0`. A virtual *super-root* with exactly one child (the real root) is
//! prepended so that every node — including the root — is "described" by
//! exactly one `1` bit. Navigation reduces to `rank`/`select` on the bit
//! vector:
//!
//! * node identifiers are the positions of the `1` bits describing them,
//! * `child(v, i)` and `parent(v)` are constant-time rank/select arithmetic.
//!
//! LOUDS supports parent/child navigation and degree queries but, unlike
//! balanced parentheses, no constant-time subtree size. It is included as a
//! second classical succinct representation, used in the benchmark harness for
//! size comparisons and as a traversal baseline.
//!
//! Every navigation step selects the terminating `0` of a unary degree
//! sequence, so LOUDS performance is dominated by `select0`; with the sampled
//! zero directory of [`BitVector`] those lookups are effectively constant
//! time instead of a binary search over the rank directory, and `degree` is
//! two of them instead of a bit-by-bit scan.

use crate::bitvector::{BitVector, BitVectorBuilder};
use xmltree::XmlTree;

/// A node of a [`LoudsTree`]: the position of the `1` bit that describes the
/// node in its parent's unary degree sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoudsNode(pub usize);

/// A static ordered tree in LOUDS encoding.
#[derive(Debug, Clone)]
pub struct LoudsTree {
    bits: BitVector,
    node_count: usize,
}

impl LoudsTree {
    /// Builds the LOUDS encoding of `xml`. Node numbering follows *level order*
    /// (breadth-first), not document order.
    pub fn from_xml(xml: &XmlTree) -> Self {
        let n = xml.node_count();
        let mut builder = BitVectorBuilder::with_capacity(2 * n + 2);
        // Super-root: degree 1.
        builder.push(true);
        builder.push(false);
        // BFS over the document, emitting each node's degree in unary.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(xml.root());
        while let Some(v) = queue.pop_front() {
            for &c in xml.children(v) {
                builder.push(true);
                queue.push_back(c);
            }
            builder.push(false);
        }
        LoudsTree {
            bits: builder.build(),
            node_count: n,
        }
    }

    /// Number of nodes (excluding the virtual super-root).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The underlying bit vector (`2n + 2` bits for `n` nodes).
    pub fn bits(&self) -> &BitVector {
        &self.bits
    }

    /// The root node.
    pub fn root(&self) -> LoudsNode {
        // The root is described by the first `1` bit (position 0, inside the
        // super-root's degree sequence).
        LoudsNode(0)
    }

    /// 0-based level-order index of a node.
    pub fn level_order_index(&self, v: LoudsNode) -> usize {
        // The describing 1-bit of the i-th node (0-based, level order) is the
        // (i+1)-th 1 bit overall.
        (self.bits.rank1(v.0 + 1) - 1) as usize
    }

    /// Node with the given 0-based level-order index.
    pub fn node_at_level_order(&self, index: usize) -> Option<LoudsNode> {
        if index >= self.node_count {
            return None;
        }
        self.bits.select1(index as u64 + 1).map(LoudsNode)
    }

    /// Position of the `0` bit terminating `v`'s own degree sequence, i.e. the
    /// start of that sequence is the preceding `0` plus one.
    fn degree_sequence_start(&self, v: LoudsNode) -> usize {
        // Node v is described by the (rank1(v.0+1))-th 1 bit; its own degree
        // sequence starts right after the (index)-th 0 bit where index =
        // level_order_index(v) + 1 (the super-root owns the first 0).
        let idx = self.level_order_index(v) + 1;
        self.bits
            .select0(idx as u64)
            .map(|p| p + 1)
            .expect("every node has a degree sequence")
    }

    /// Number of children of `v`.
    ///
    /// Two sampled `select0` lookups: the degree sequence of the `i`-th node
    /// (level order, super-root counted) spans the bits between the `i+1`-th
    /// and `i+2`-th `0`, so the degree is their distance minus nothing — no
    /// bit-by-bit scan of wide nodes.
    pub fn degree(&self, v: LoudsNode) -> usize {
        let idx = self.level_order_index(v);
        let start = self
            .bits
            .select0(idx as u64 + 1)
            .map(|p| p + 1)
            .expect("every node has a degree sequence");
        let end = self
            .bits
            .select0(idx as u64 + 2)
            .expect("every degree sequence is 0-terminated");
        end - start
    }

    /// Whether `v` is a leaf.
    pub fn is_leaf(&self, v: LoudsNode) -> bool {
        let start = self.degree_sequence_start(v);
        start >= self.bits.len() || !self.bits.get(start)
    }

    /// The `i`-th child (0-based) of `v`, if it exists.
    pub fn child(&self, v: LoudsNode, i: usize) -> Option<LoudsNode> {
        let start = self.degree_sequence_start(v);
        let pos = start + i;
        if pos < self.bits.len() && self.bits.get(pos) {
            Some(LoudsNode(pos))
        } else {
            None
        }
    }

    /// First child of `v`.
    pub fn first_child(&self, v: LoudsNode) -> Option<LoudsNode> {
        self.child(v, 0)
    }

    /// Next sibling of `v`.
    pub fn next_sibling(&self, v: LoudsNode) -> Option<LoudsNode> {
        let pos = v.0 + 1;
        if pos < self.bits.len() && self.bits.get(pos) {
            Some(LoudsNode(pos))
        } else {
            None
        }
    }

    /// Parent of `v` (`None` for the root).
    pub fn parent(&self, v: LoudsNode) -> Option<LoudsNode> {
        if v == self.root() {
            return None;
        }
        // The describing bit of v lies inside its parent's degree sequence; the
        // parent is the node whose sequence contains position v.0: it is the
        // (number of 0s before v.0)-th node in level order, minus the super-root.
        let zeros_before = self.bits.rank0(v.0) as usize;
        // zeros_before >= 1 because the super-root's terminating 0 precedes all
        // real degree sequences.
        self.node_at_level_order(zeros_before - 1)
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.size_bytes() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse::parse_xml;
    use xmltree::XmlNodeId;

    fn sample_doc() -> XmlTree {
        parse_xml(
            "<a><b><d/><e><h/></e></b><c><f/><g/></c></a>",
        )
        .unwrap()
    }

    /// Level-order listing of the pointer tree, the oracle for node numbering.
    fn level_order(xml: &XmlTree) -> Vec<XmlNodeId> {
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(xml.root());
        while let Some(v) = queue.pop_front() {
            out.push(v);
            for &c in xml.children(v) {
                queue.push_back(c);
            }
        }
        out
    }

    #[test]
    fn encoding_has_expected_length() {
        let xml = sample_doc();
        let t = LoudsTree::from_xml(&xml);
        assert_eq!(t.node_count(), 8);
        // 2n + 1 bits: one describing `1` per node (the super-root's single `1`
        // describes the document root) and one terminating `0` per node plus
        // the super-root's own terminator.
        assert_eq!(t.bits().len(), 2 * 8 + 1);
        assert_eq!(t.bits().count_ones() as usize, 8);
        assert_eq!(t.bits().count_zeros() as usize, 8 + 1);
    }

    #[test]
    fn degree_and_leaf_match_the_pointer_tree() {
        let xml = sample_doc();
        let t = LoudsTree::from_xml(&xml);
        let order = level_order(&xml);
        for (i, &xn) in order.iter().enumerate() {
            let v = t.node_at_level_order(i).unwrap();
            assert_eq!(t.level_order_index(v), i);
            assert_eq!(t.degree(v), xml.children(xn).len(), "degree of node {i}");
            assert_eq!(t.is_leaf(v), xml.children(xn).is_empty());
        }
        assert!(t.node_at_level_order(order.len()).is_none());
    }

    #[test]
    fn child_and_parent_are_inverse() {
        let xml = sample_doc();
        let t = LoudsTree::from_xml(&xml);
        let order = level_order(&xml);
        for (i, &xn) in order.iter().enumerate() {
            let v = t.node_at_level_order(i).unwrap();
            for (ci, &xc) in xml.children(xn).iter().enumerate() {
                let child = t.child(v, ci).unwrap();
                let child_lo = order.iter().position(|&x| x == xc).unwrap();
                assert_eq!(t.level_order_index(child), child_lo);
                assert_eq!(t.parent(child), Some(v));
            }
            assert!(t.child(v, xml.children(xn).len()).is_none());
        }
        assert!(t.parent(t.root()).is_none());
    }

    #[test]
    fn sibling_chain_matches_child_lists() {
        let xml = sample_doc();
        let t = LoudsTree::from_xml(&xml);
        let order = level_order(&xml);
        for (i, &xn) in order.iter().enumerate() {
            let v = t.node_at_level_order(i).unwrap();
            let mut got = Vec::new();
            let mut c = t.first_child(v);
            while let Some(x) = c {
                got.push(t.level_order_index(x));
                c = t.next_sibling(x);
            }
            let want: Vec<usize> = xml
                .children(xn)
                .iter()
                .map(|c| order.iter().position(|x| x == c).unwrap())
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn single_node_and_star_trees() {
        let xml = parse_xml("<only/>").unwrap();
        let t = LoudsTree::from_xml(&xml);
        assert_eq!(t.node_count(), 1);
        assert!(t.is_leaf(t.root()));
        assert!(t.first_child(t.root()).is_none());
        assert!(t.next_sibling(t.root()).is_none());

        let mut xml = XmlTree::new("root");
        let root = xml.root();
        for _ in 0..1000 {
            xml.add_child(root, "item");
        }
        let t = LoudsTree::from_xml(&xml);
        assert_eq!(t.degree(t.root()), 1000);
        let last = t.child(t.root(), 999).unwrap();
        assert!(t.is_leaf(last));
        assert_eq!(t.parent(last), Some(t.root()));
        assert!(t.next_sibling(last).is_none());
    }

    #[test]
    fn size_is_roughly_two_bits_per_node() {
        let mut xml = XmlTree::new("root");
        let root = xml.root();
        for _ in 0..50_000 {
            xml.add_child(root, "item");
        }
        let t = LoudsTree::from_xml(&xml);
        let bits_per_node = 8.0 * t.size_bytes() as f64 / t.node_count() as f64;
        assert!(bits_per_node < 4.0, "LOUDS should be ~2 bits/node, got {bits_per_node:.2}");
    }
}
