//! Criterion benches for PR 10's network edge: the `server_throughput`
//! group measures the full wire path — 4 concurrent clients over a unix
//! socket (TCP loopback elsewhere), each pipelining acknowledged update
//! batches into a server whose auto-drainer coalesces them into shared
//! group commits — against the same 4 threads committing directly through
//! `DurableStore::apply_batch`, one WAL record and fsync per batch.
//!
//! Like the queue bench this runs on the in-memory fault-injection
//! filesystem: the gate pins the *software* cost (framing, socket hops,
//! drain scheduling, group-commit protocol), not fsync hardware noise.
//! The coalescing contract itself — acknowledged requests vastly
//! outnumber fsyncs — is asserted outside the measurement loop, and a
//! warmup round reports ops/sec with p50/p99 reply latencies.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use datasets::workload::{random_update_sequence, WorkloadMix};
use grammar_repair::durable::DurableStore;
use grammar_repair::queue::DrainPolicy;
use grammar_repair::server::{Server, ServerConfig};
use grammar_repair::store::DocId;
use grammar_repair::wal::testing::FailpointFs;
use grammar_repair::client::PendingApply;
use grammar_repair::Client;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

const CLIENTS: usize = 4;
const BATCHES_PER_CLIENT: usize = 12;
const OPS_PER_BATCH: usize = 6;
/// Acknowledged batches each client keeps in flight: the window is what
/// feeds the drainer whole runs of batches to coalesce.
const WINDOW: usize = 8;

fn fleet() -> Vec<XmlTree> {
    (0..CLIENTS)
        .map(|i| Dataset::ExiWeblog.generate(0.03 + 0.004 * i as f64))
        .collect()
}

/// Steady-state rename-only batches for one client's document, valid on
/// every re-application.
fn client_batches(xml: &XmlTree, seed: u64) -> Vec<Vec<UpdateOp>> {
    random_update_sequence(
        xml,
        BATCHES_PER_CLIENT * OPS_PER_BATCH,
        seed,
        WorkloadMix {
            rename_probability: 1.0,
            locality: 0.7,
            ..WorkloadMix::default()
        },
    )
    .chunks(OPS_PER_BATCH)
    .map(<[UpdateOp]>::to_vec)
    .collect()
}

fn server_config() -> ServerConfig {
    ServerConfig {
        drain: DrainPolicy {
            max_pending_ops: 128,
            max_batch_age: Duration::from_micros(500),
            idle_flush: Duration::from_micros(200),
        },
        ..ServerConfig::default()
    }
}

#[cfg(unix)]
fn serve(store: Arc<DurableStore>) -> (Server, Vec<Client>) {
    let path = std::env::temp_dir().join(format!("sltxml-bench-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = Server::serve_unix(store, &path, server_config()).expect("socket path is free");
    let clients = (0..CLIENTS).map(|_| Client::connect_unix(&path)).collect();
    (server, clients)
}

#[cfg(not(unix))]
fn serve(store: Arc<DurableStore>) -> (Server, Vec<Client>) {
    let server =
        Server::serve_tcp(store, "127.0.0.1:0", server_config()).expect("loopback listens");
    let addr = server.local_addr().expect("tcp server has an address").to_string();
    let clients = (0..CLIENTS).map(|_| Client::connect_tcp(addr.clone())).collect();
    (server, clients)
}

/// One client's round: pipeline `WINDOW` acknowledged batches over the
/// socket, returning each reply's latency (send → `Applied` ack).
fn run_pipelined(client: &Client, id: DocId, batches: &[Vec<UpdateOp>]) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(batches.len());
    let mut inflight: VecDeque<(PendingApply, Instant)> = VecDeque::with_capacity(WINDOW);
    for ops in batches {
        if inflight.len() == WINDOW {
            let (pending, sent) = inflight.pop_front().expect("non-empty window");
            pending.wait_applied().expect("renames stay valid");
            latencies.push(sent.elapsed());
        }
        let sent = Instant::now();
        let pending = client
            .begin_apply_batch(id, ops.clone())
            .expect("live server accepts writes");
        inflight.push_back((pending, sent));
    }
    while let Some((pending, sent)) = inflight.pop_front() {
        pending.wait_applied().expect("renames stay valid");
        latencies.push(sent.elapsed());
    }
    latencies
}

/// Drives all clients concurrently for one round, collecting every reply
/// latency.
fn pipelined_round(clients: &[Client], ids: &[DocId], batches: &[Vec<Vec<UpdateOp>>]) -> Vec<Duration> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter()
            .zip(ids)
            .zip(batches)
            .map(|((client, &id), batches)| {
                scope.spawn(move || run_pipelined(client, id, batches))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread completes"))
            .collect()
    })
}

fn direct_round(store: &DurableStore, ids: &[DocId], batches: &[Vec<Vec<UpdateOp>>]) {
    std::thread::scope(|scope| {
        for (&id, batches) in ids.iter().zip(batches) {
            scope.spawn(move || {
                for ops in batches {
                    store.apply_batch(id, ops).expect("renames stay valid");
                }
            });
        }
    });
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    let docs = fleet();
    let batches: Vec<Vec<Vec<UpdateOp>>> = docs
        .iter()
        .enumerate()
        .map(|(i, xml)| client_batches(xml, 0x5E4E + i as u64))
        .collect();
    let total_batches = (CLIENTS * BATCHES_PER_CLIENT) as u64;

    // --- Served fleet: 4 pipelined clients over one socket ---------------
    let served_fs = Arc::new(FailpointFs::new());
    let (served_store, _) = DurableStore::open_with(served_fs.clone(), "db").expect("fresh dir");
    let (server, clients) = serve(Arc::new(served_store));
    let served_ids: Vec<DocId> = docs
        .iter()
        .map(|xml| {
            clients[0]
                .load_xml(xml)
                .expect("dataset labels intern over the wire")
        })
        .collect();

    // Outside the measurement loop: the coalescing contract and the reply
    // latency profile. Every batch below is *acknowledged* — each ack is a
    // group-committed fsync the client observed — yet the fsyncs are a
    // fraction of the requests.
    let started = Instant::now();
    let syncs_before = served_fs.sync_count();
    let mut latencies = pipelined_round(&clients, &served_ids, &batches);
    let round_time = started.elapsed();
    let syncs = served_fs.sync_count() - syncs_before;
    assert_eq!(latencies.len(), total_batches as usize);
    assert!(
        syncs * 2 < total_batches,
        "acked batches must share group commits: {syncs} fsyncs for {total_batches} acks"
    );
    latencies.sort();
    eprintln!(
        "server_throughput: {total_batches} acked batches in {round_time:?} \
         ({:.0} batches/s), {syncs} fsyncs, reply latency p50 {:?} p99 {:?}",
        total_batches as f64 / round_time.as_secs_f64(),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    );

    group.bench_with_input(
        BenchmarkId::new("paper_mix_4clients", "pipelined_socket_48_batches"),
        &(&clients, &served_ids, &batches),
        |b, (clients, ids, batches)| {
            b.iter(|| pipelined_round(clients, ids, batches).len())
        },
    );

    // --- Direct fleet: the same 4 threads, one commit per batch ----------
    let direct_fs = Arc::new(FailpointFs::new());
    let (direct_store, _) = DurableStore::open_with(direct_fs.clone(), "db").expect("fresh dir");
    let direct_ids: Vec<DocId> = docs
        .iter()
        .map(|xml| direct_store.load_xml(xml).expect("dataset labels intern"))
        .collect();
    let syncs_before = direct_fs.sync_count();
    direct_round(&direct_store, &direct_ids, &batches);
    let direct_syncs = direct_fs.sync_count() - syncs_before;
    assert!(
        direct_syncs >= total_batches / 2,
        "direct commits may share fsyncs only via the WAL's group-commit leader: \
         {direct_syncs} fsyncs for {total_batches} batches"
    );

    group.bench_with_input(
        BenchmarkId::new("paper_mix_4clients", "direct_48_batches"),
        &(&direct_store, &direct_ids, &batches),
        |b, (store, ids, batches)| {
            b.iter(|| {
                direct_round(store, ids, batches);
                batches.len()
            })
        },
    );
    group.finish();
    drop(server);
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
