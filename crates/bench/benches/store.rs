//! Criterion benches for the multi-document session (`DomStore`): loading a
//! fleet of similar documents against the shared symbol table, and serving a
//! mixed read/update workload interleaved across the fleet — store with its
//! debt scheduler vs independent `CompressedDom`s with the paper's
//! fixed-interval counters.
//!
//! The `store_multidoc` group is part of the committed
//! `BENCH_compression.json` baseline and gated in CI (`bench_gate`). On top
//! of the timed entries the bench prints the shared-alphabet resident sizes
//! (one shared table vs per-document tables) once per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use datasets::workload::{random_update_sequence, WorkloadMix};
use grammar_repair::store::{DomStore, SchedulerConfig};
use grammar_repair::CompressedDom;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

const FLEET: usize = 6;
const OPS_PER_DOC: usize = 30;
const CHUNK: usize = 10;

/// Six similar documents: the same generator at slightly different scales,
/// so the alphabets coincide while the structures differ.
fn fleet() -> Vec<XmlTree> {
    (0..FLEET)
        .map(|i| Dataset::ExiWeblog.generate(0.03 + 0.004 * i as f64))
        .collect()
}

/// One clustered mixed workload per document (FLUX-style shapes).
fn fleet_workloads(docs: &[XmlTree]) -> Vec<Vec<UpdateOp>> {
    docs.iter()
        .enumerate()
        .map(|(i, xml)| {
            random_update_sequence(xml, OPS_PER_DOC, 0xD0C5 + i as u64, WorkloadMix::clustered(0.85))
        })
        .collect()
}

fn loaded_store(docs: &[XmlTree]) -> DomStore {
    let store = DomStore::new().with_scheduler(SchedulerConfig {
        debt_threshold: 300,
        drain_budget: 30_000,
        auto: true,
    });
    for xml in docs {
        store.load_xml(xml).expect("dataset labels intern");
    }
    store
}

fn bench_store_multidoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_multidoc");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let docs = fleet();
    let workloads = fleet_workloads(&docs);

    // Report the shared-alphabet savings once per run (not a timed entry —
    // resident bytes are machine-independent and asserted by the store
    // differential suite; the committed numbers live in ROADMAP.md).
    let store = loaded_store(&docs);
    let stats = store.symbol_stats();
    println!(
        "store_multidoc: label tables {} B resident shared vs {} B per-document ({:.2}x, {} docs)",
        stats.resident_bytes(),
        stats.unshared_bytes,
        stats.unshared_bytes as f64 / stats.resident_bytes().max(1) as f64,
        FLEET
    );

    // Loading the fleet from scratch: compression dominates; the entry
    // guards the shared-table interning seam against regressions.
    group.bench_with_input(BenchmarkId::new("load_fleet", "exi_weblog_6"), &docs, |b, docs| {
        b.iter(|| loaded_store(docs))
    });

    // Interleaved mixed read/update workload through one store: per round,
    // each document takes one batch chunk and then serves a query.
    group.bench_with_input(
        BenchmarkId::new("mixed_workload_store", "exi_weblog_6"),
        &(&store, &workloads),
        |b, (store, workloads)| {
            b.iter(|| {
                let store = (*store).clone();
                let ids = store.doc_ids();
                let mut matched = 0usize;
                for round in 0..OPS_PER_DOC / CHUNK {
                    for (d, &id) in ids.iter().enumerate() {
                        let chunk = &workloads[d][round * CHUNK..(round + 1) * CHUNK];
                        store.apply_batch(id, chunk).expect("workload is valid");
                        matched += store.query_str(id, "//message").expect("live doc").len();
                    }
                }
                matched
            })
        },
    );

    // The same workload against independent single-document handles with the
    // paper's fixed-interval policy (one counter per document, interval
    // chosen to recompress about as often as the store's scheduler does).
    let doms: Vec<CompressedDom> = docs.iter().map(|xml| CompressedDom::from_xml(xml, 3)).collect();
    group.bench_with_input(
        BenchmarkId::new("mixed_workload_independent", "exi_weblog_6"),
        &(&doms, &workloads),
        |b, (doms, workloads)| {
            b.iter(|| {
                let mut doms: Vec<CompressedDom> = (*doms).clone();
                let mut matched = 0usize;
                for round in 0..OPS_PER_DOC / CHUNK {
                    for (d, dom) in doms.iter_mut().enumerate() {
                        let chunk = &workloads[d][round * CHUNK..(round + 1) * CHUNK];
                        dom.apply_batch(chunk).expect("workload is valid");
                        matched += dom.query_str("//message").expect("valid query").len();
                    }
                }
                matched
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_store_multidoc);
criterion_main!(benches);
