//! Criterion benches for the concurrent `DomStore`: snapshot-read throughput
//! across thread counts, cross-document write throughput (serial batches vs
//! the parallel `apply_batch_many` fan-out), and reader latency while the
//! background maintenance thread recompresses under write churn.
//!
//! The `store_concurrent` group is part of the committed
//! `BENCH_compression.json` baseline and gated in CI (`bench_gate`). Thread
//! scaling is hardware-dependent: on a single-core runner the threaded read
//! entries measure parity (scheduling overhead only) and the ≥3×-at-4-threads
//! target of the concurrent-store issue is only observable on multi-core
//! hardware — the bench prints the detected parallelism so committed numbers
//! are interpretable.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use datasets::workload::{random_update_sequence, WorkloadMix};
use grammar_repair::query::PathQuery;
use grammar_repair::store::{DocId, DomStore, SchedulerConfig};
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

const FLEET: usize = 6;
/// Total snapshot reads per timed iteration, split across the reader
/// threads — large enough that the measured work dominates thread spawn.
const READS_PER_ITER: usize = 384;

fn fleet() -> Vec<XmlTree> {
    (0..FLEET)
        .map(|i| Dataset::ExiWeblog.generate(0.03 + 0.004 * i as f64))
        .collect()
}

fn fleet_workloads(docs: &[XmlTree], ops: usize) -> Vec<Vec<UpdateOp>> {
    docs.iter()
        .enumerate()
        .map(|(i, xml)| {
            random_update_sequence(xml, ops, 0xC0_C0 + i as u64, WorkloadMix::clustered(0.85))
        })
        .collect()
}

fn loaded_store(docs: &[XmlTree]) -> DomStore {
    let store = DomStore::new().with_scheduler(SchedulerConfig {
        debt_threshold: 300,
        drain_budget: 30_000,
        auto: true,
    });
    for xml in docs {
        store.load_xml(xml).expect("dataset labels intern");
    }
    store
}

/// Runs `READS_PER_ITER` snapshot queries round-robin over the fleet, split
/// across `threads` scoped workers sharing `&store`. Returns total matches
/// (kept live so the reads cannot be optimized away).
fn parallel_reads(store: &DomStore, ids: &[DocId], threads: usize) -> usize {
    let query = PathQuery::parse("//message").expect("valid query");
    let next = AtomicUsize::new(0);
    let matched = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = 0usize;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= READS_PER_ITER {
                        break;
                    }
                    let snap = store.snapshot(ids[i % ids.len()]).expect("live doc");
                    local += snap.query(&query).len();
                }
                matched.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    matched.load(Ordering::Relaxed)
}

fn bench_store_concurrent(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_concurrent");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "store_concurrent: {cores} hardware threads available \
         (read_throughput scaling beyond 1 thread requires a multi-core host)"
    );

    let docs = fleet();
    let store = loaded_store(&docs);
    let ids = store.doc_ids();

    // Snapshot-read throughput at 1/2/4/8 reader threads: a fixed number of
    // lock-free snapshot queries split across the thread pool. On an
    // N-core host the wall clock drops toward 1/N of the single-thread
    // entry; on one core the entries pin that zero-lock readers at least
    // never get *slower* with thread count.
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("read_throughput", format!("threads_{threads}")),
            &threads,
            |b, &threads| b.iter(|| parallel_reads(&store, &ids, threads)),
        );
    }

    // Cross-document write throughput: the same per-document batches applied
    // serially vs fanned out over the worker pool (`apply_batch_many`). The
    // store is cloned per iteration (copy-on-write: the clone is cheap and
    // the first write per document pays the deep copy in both variants).
    let write_workloads = fleet_workloads(&docs, 12);
    let jobs: Vec<(DocId, Vec<UpdateOp>)> = ids
        .iter()
        .zip(&write_workloads)
        .map(|(&id, ops)| (id, ops.clone()))
        .collect();
    group.bench_with_input(
        BenchmarkId::new("write_throughput", "serial_6docs"),
        &(&store, &jobs),
        |b, (store, jobs)| {
            b.iter(|| {
                let store = (*store).clone();
                for (id, ops) in jobs.iter() {
                    store.apply_batch(*id, ops).expect("workload is valid");
                }
                store.doc_ids().len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("write_throughput", "sharded_6docs"),
        &(&store, &jobs),
        |b, (store, jobs)| {
            b.iter(|| {
                let store = (*store).clone();
                let (results, _) = store.apply_batch_many(jobs);
                for result in results {
                    result.expect("workload is valid");
                }
                store.doc_ids().len()
            })
        },
    );

    // Reader latency: one snapshot query against the hot document, first on
    // a quiescent store, then while a churn thread batches updates and the
    // background maintenance thread recompresses aside. The MVCC swap
    // keeps the two within a small factor — readers never wait for
    // recompression.
    let hot = ids[0];
    let query = PathQuery::parse("//message").expect("valid query");
    group.bench_with_input(
        BenchmarkId::new("reader_latency", "quiescent"),
        &(&store, hot),
        |b, (store, hot)| {
            b.iter(|| store.snapshot(*hot).expect("live doc").query(&query).len())
        },
    );

    let mut churn_store = loaded_store(&docs);
    churn_store.start_maintenance(Duration::from_millis(1));
    let churn_ops = random_update_sequence(&docs[0], 4000, 0xFEED, WorkloadMix::clustered(0.85));
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let store_ref = &churn_store;
        let stop_ref = &stop;
        let ops_ref = &churn_ops;
        scope.spawn(move || {
            // Endless write churn: cycle the schedule in small batches with
            // short pauses, keeping the maintenance thread busy draining.
            for batch in ops_ref.chunks(6).cycle() {
                if stop_ref.load(Ordering::Relaxed) {
                    return;
                }
                store_ref.apply_batch(hot, batch).expect("workload is valid");
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        group.bench_with_input(
            BenchmarkId::new("reader_latency", "under_recompression"),
            &(&churn_store, hot),
            |b, (store, hot)| {
                b.iter(|| store.snapshot(*hot).expect("live doc").query(&query).len())
            },
        );
        stop.store(true, Ordering::Relaxed);
    });
    churn_store.stop_maintenance();

    group.finish();
}

criterion_group!(benches, bench_store_concurrent);
criterion_main!(benches);
