//! Criterion bench for the fragment-export optimization (Figure 3): the `G_n`
//! family recompressed with and without the optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::gn::g_n;
use grammar_repair::repair::{GrammarRePair, GrammarRePairConfig};

fn bench_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("gn_optimization");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [6usize, 8, 10] {
        let grammar = g_n(n);
        for (label, optimize) in [("optimized", true), ("non_optimized", false)] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &grammar,
                |b, grammar| {
                    b.iter(|| {
                        let mut g = grammar.clone();
                        let config = GrammarRePairConfig {
                            optimize,
                            ..GrammarRePairConfig::default()
                        };
                        GrammarRePair::new(config).recompress(&mut g)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_optimization);
criterion_main!(benches);
