//! Ablation benches for the design choices called out in DESIGN.md:
//! the fragment-export optimization ("lemma generation"), the pruning phase,
//! and the `k_in` bound on digram rank. Each variant is measured on the same
//! pre-compressed-then-updated grammar so the numbers compare the
//! recompression loop itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use datasets::workload::{random_insert_delete_sequence, WorkloadMix};
use grammar_repair::repair::{GrammarRePair, GrammarRePairConfig};
use grammar_repair::update::apply_update;
use sltgrammar::Grammar;
use treerepair::TreeRePair;

/// Builds the shared workload: compress a document, apply 50 random updates.
fn updated_grammar(dataset: Dataset) -> Grammar {
    let xml = dataset.generate(0.05);
    let (mut g, _) = TreeRePair::default().compress_xml(&xml);
    let ops = random_insert_delete_sequence(&xml, 50, 7, WorkloadMix::default());
    for op in &ops {
        // Updates on positions that vanished after a delete are skipped — the
        // workload is only meant to dirty the grammar.
        let _ = apply_update(&mut g, op);
    }
    g
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("recompression_ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let variants: Vec<(&str, GrammarRePairConfig)> = vec![
        ("default", GrammarRePairConfig::default()),
        (
            "no_fragment_export",
            GrammarRePairConfig {
                optimize: false,
                ..GrammarRePairConfig::default()
            },
        ),
        (
            "no_pruning",
            GrammarRePairConfig {
                prune: false,
                ..GrammarRePairConfig::default()
            },
        ),
        (
            "max_rank_2",
            GrammarRePairConfig {
                max_rank: 2,
                ..GrammarRePairConfig::default()
            },
        ),
        (
            "max_rank_8",
            GrammarRePairConfig {
                max_rank: 8,
                ..GrammarRePairConfig::default()
            },
        ),
    ];

    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let dirty = updated_grammar(dataset);
        for (name, config) in &variants {
            group.bench_with_input(
                BenchmarkId::new(*name, dataset.name()),
                &(&dirty, *config),
                |b, (dirty, config)| {
                    b.iter(|| {
                        let mut g = (*dirty).clone();
                        GrammarRePair::new(*config).recompress(&mut g)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
