//! Criterion benches for the durable `DomStore`: the write-ahead-log tax on
//! steady-state update throughput (WAL off vs per-document commits vs one
//! grouped commit per fan-out), recovery time as a function of log length,
//! and the cost of folding the store into a checkpoint.
//!
//! The `store_durable` group is part of the committed
//! `BENCH_compression.json` baseline and gated in CI (`bench_gate`), so
//! every entry runs against the in-memory fault-injection filesystem: the
//! write entries measure the WAL's software tax (record framing, CRC32,
//! the group-commit protocol and its locking) and the recovery/checkpoint
//! entries measure replay and serialization work — none of them disk
//! hardware, whose fsync latency is far too noisy to gate at 20 %
//! (measured on this host's ext4: 0.2–0.5 ms per commit, swinging 2–3×
//! between runs). On a real disk the commit cost is fsync-dominated;
//! that floor is paid once per commit regardless of batch size, which is
//! exactly what batching and leader-based group commit amortize.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use datasets::workload::{random_update_sequence, WorkloadMix};
use grammar_repair::durable::DurableStore;
use grammar_repair::store::{DocId, DomStore};
use grammar_repair::wal::testing::FailpointFs;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

const FLEET: usize = 6;

fn fleet() -> Vec<XmlTree> {
    (0..FLEET)
        .map(|i| Dataset::ExiWeblog.generate(0.03 + 0.004 * i as f64))
        .collect()
}

/// A steady-state batch per document: rename-only workloads keep the
/// document structure (and thus target validity) stable, so the same jobs
/// can be re-applied every iteration. 48 ops per commit — the regime the
/// log is designed for: one commit amortized over a real batch, not one
/// commit per keystroke.
fn rename_jobs(docs: &[XmlTree], ids: &[DocId]) -> Vec<(DocId, Vec<UpdateOp>)> {
    ids.iter()
        .zip(docs)
        .enumerate()
        .map(|(d, (&id, xml))| {
            let ops = random_update_sequence(
                xml,
                48,
                0xD0_0D + d as u64,
                WorkloadMix {
                    rename_probability: 1.0,
                    ..WorkloadMix::default()
                },
            );
            (id, ops)
        })
        .collect()
}

/// An in-memory store with `records` committed log records behind it.
fn logged_fs(docs: &[XmlTree], records: usize) -> Arc<FailpointFs> {
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").expect("fresh dir");
    let ids: Vec<DocId> = docs
        .iter()
        .map(|xml| store.load_xml(xml).expect("dataset labels intern"))
        .collect();
    let jobs = rename_jobs(docs, &ids);
    let mut committed = ids.len();
    'outer: loop {
        for (id, ops) in &jobs {
            if committed >= records {
                break 'outer;
            }
            store.apply_batch(*id, ops).expect("renames stay valid");
            committed += 1;
        }
    }
    fs
}

fn bench_store_durable(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_durable");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    let docs = fleet();

    // --- WAL tax on steady-state write throughput -------------------------
    // The same six per-document batches: applied to a plain in-memory store,
    // through per-document durable commits (six log records), and as one
    // grouped `apply_batch_many` commit (one record). Target: `wal_on`
    // stays within 2x of `wal_off`.
    let plain = DomStore::new();
    let plain_ids: Vec<DocId> = docs
        .iter()
        .map(|xml| plain.load_xml(xml).expect("dataset labels intern"))
        .collect();
    let plain_jobs = rename_jobs(&docs, &plain_ids);
    group.bench_with_input(
        BenchmarkId::new("write_throughput", "wal_off_6docs"),
        &(&plain, &plain_jobs),
        |b, (store, jobs)| {
            b.iter(|| {
                for (id, ops) in jobs.iter() {
                    store.apply_batch(*id, ops).expect("renames stay valid");
                }
                jobs.len()
            })
        },
    );

    let (durable, _) = DurableStore::open_with(Arc::new(FailpointFs::new()), "db")
        .expect("fresh in-memory dir");
    let durable_ids: Vec<DocId> = docs
        .iter()
        .map(|xml| durable.load_xml(xml).expect("dataset labels intern"))
        .collect();
    let durable_jobs = rename_jobs(&docs, &durable_ids);
    group.bench_with_input(
        BenchmarkId::new("write_throughput", "wal_on_6docs"),
        &(&durable, &durable_jobs),
        |b, (store, jobs)| {
            b.iter(|| {
                for (id, ops) in jobs.iter() {
                    store.apply_batch(*id, ops).expect("renames stay valid");
                }
                jobs.len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("write_throughput", "wal_on_grouped_6docs"),
        &(&durable, &durable_jobs),
        |b, (store, jobs)| {
            b.iter(|| {
                let (results, _) = store.apply_batch_many(jobs);
                for result in results {
                    result.expect("renames stay valid");
                }
                jobs.len()
            })
        },
    );

    // --- Recovery time vs log length --------------------------------------
    // Replay-dominated: open a store whose log holds N committed records.
    for records in [64usize, 256, 1024] {
        let fs = logged_fs(&docs, records);
        group.bench_with_input(
            BenchmarkId::new("recovery", format!("replay_{records}_records")),
            &fs,
            |b, fs| {
                b.iter(|| {
                    let (store, report) =
                        DurableStore::open_with(fs.clone(), "db").expect("log is intact");
                    assert_eq!(report.last_lsn, records as u64);
                    store.len()
                })
            },
        );
    }

    // --- Checkpoint cost ---------------------------------------------------
    // Serializing the whole fleet into an atomic snapshot, repeatedly (the
    // log is already truncated after the first call, so this isolates the
    // snapshot-write cost).
    let fs = logged_fs(&docs, 128);
    let (ck_store, _) = DurableStore::open_with(fs, "db").expect("log is intact");
    group.bench_with_input(
        BenchmarkId::new("checkpoint", "fleet_6docs"),
        &ck_store,
        |b, store| b.iter(|| store.checkpoint().expect("in-memory fs cannot fail").bytes),
    );

    group.finish();
}

criterion_group!(benches, bench_store_durable);
criterion_main!(benches);
