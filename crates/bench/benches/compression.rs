//! Criterion benches for static compression (Table III / Section V-B):
//! TreeRePair vs GrammarRePair on the synthetic corpus at small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use datasets::regular::heterogeneous_records_like;
use datasets::workload::{random_insert_delete_sequence, WorkloadMix};
use grammar_repair::repair::{GrammarRePair, GrammarRePairConfig};
use grammar_repair::update::apply_update;
use treerepair::{DigramSelector, TreeRePair, TreeRePairConfig};

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_compression");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let xml = dataset.generate(0.05);
        group.bench_with_input(
            BenchmarkId::new("treerepair", dataset.name()),
            &xml,
            |b, xml| b.iter(|| TreeRePair::default().compress_xml(xml)),
        );
        group.bench_with_input(
            BenchmarkId::new("grammarrepair_on_tree", dataset.name()),
            &xml,
            |b, xml| b.iter(|| GrammarRePair::default().compress_xml(xml)),
        );
        let (grammar, _) = TreeRePair::default().compress_xml(&xml);
        group.bench_with_input(
            BenchmarkId::new("grammarrepair_on_grammar", dataset.name()),
            &grammar,
            |b, grammar| {
                b.iter(|| {
                    let mut g = grammar.clone();
                    GrammarRePair::default().recompress(&mut g)
                })
            },
        );
    }
    group.finish();
}

/// Frequency-bucket queue vs naive table-rescan selection, on the
/// selection-bound heterogeneous event-stream corpus (repetitive *and*
/// label-diverse) and on a near-pathological low-diversity corpus where both
/// selectors are equivalent. Outputs are byte-identical (see the
/// `selector_equivalence` test suite); only wall-time differs.
fn bench_selectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("digram_selector");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let corpora = [
        ("heterogeneous", heterogeneous_records_like(500, 10_000)),
        ("exi_weblog", Dataset::ExiWeblog.generate(0.05)),
    ];
    for (name, xml) in &corpora {
        group.bench_with_input(BenchmarkId::new("queue", name), xml, |b, xml| {
            b.iter(|| TreeRePair::default().compress_xml(xml))
        });
        let naive = TreeRePair::new(TreeRePairConfig {
            selector: DigramSelector::NaiveScan,
            ..TreeRePairConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("naive", name), xml, |b, xml| {
            b.iter(|| naive.compress_xml(xml))
        });
    }
    group.finish();
}

/// The paper's actual workload: a compressed document receives a batch of
/// random updates (90 % inserts / 10 % deletes executed directly on the
/// grammar) and is then recompressed. `incremental` keeps the occurrence
/// table and frequency queue alive across rounds (the default);
/// `rebuild` re-retrieves all occurrence generators per round (the
/// `NaiveScan` oracle, the pre-optimization behavior). Outputs are
/// byte-identical (see `tests/recompress_incremental.rs`); only wall-time
/// differs.
fn bench_recompress_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("recompress_incremental");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let xml = dataset.generate(0.05);
        let ops = random_insert_delete_sequence(&xml, 60, 42, WorkloadMix::default());
        let (mut updated, _) = GrammarRePair::default().compress_xml(&xml);
        for op in &ops {
            apply_update(&mut updated, op).expect("workload ops are valid");
        }
        group.bench_with_input(
            BenchmarkId::new("incremental", dataset.name()),
            &updated,
            |b, g0| {
                b.iter(|| {
                    let mut g = g0.clone();
                    GrammarRePair::default().recompress(&mut g)
                })
            },
        );
        let rebuild = GrammarRePair::new(GrammarRePairConfig {
            selector: DigramSelector::NaiveScan,
            ..GrammarRePairConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("rebuild", dataset.name()),
            &updated,
            |b, g0| {
                b.iter(|| {
                    let mut g = g0.clone();
                    rebuild.recompress(&mut g)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compression,
    bench_selectors,
    bench_recompress_incremental
);
criterion_main!(benches);
