//! Criterion benches for static compression (Table III / Section V-B):
//! TreeRePair vs GrammarRePair on the synthetic corpus at small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use grammar_repair::repair::GrammarRePair;
use treerepair::TreeRePair;

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_compression");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let xml = dataset.generate(0.05);
        group.bench_with_input(
            BenchmarkId::new("treerepair", dataset.name()),
            &xml,
            |b, xml| b.iter(|| TreeRePair::default().compress_xml(xml)),
        );
        group.bench_with_input(
            BenchmarkId::new("grammarrepair_on_tree", dataset.name()),
            &xml,
            |b, xml| b.iter(|| GrammarRePair::default().compress_xml(xml)),
        );
        let (grammar, _) = TreeRePair::default().compress_xml(&xml);
        group.bench_with_input(
            BenchmarkId::new("grammarrepair_on_grammar", dataset.name()),
            &grammar,
            |b, grammar| {
                b.iter(|| {
                    let mut g = grammar.clone();
                    GrammarRePair::default().recompress(&mut g)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
