//! Criterion benches for static compression (Table III / Section V-B):
//! TreeRePair vs GrammarRePair on the synthetic corpus at small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use datasets::regular::heterogeneous_records_like;
use grammar_repair::repair::GrammarRePair;
use treerepair::{DigramSelector, TreeRePair, TreeRePairConfig};

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_compression");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let xml = dataset.generate(0.05);
        group.bench_with_input(
            BenchmarkId::new("treerepair", dataset.name()),
            &xml,
            |b, xml| b.iter(|| TreeRePair::default().compress_xml(xml)),
        );
        group.bench_with_input(
            BenchmarkId::new("grammarrepair_on_tree", dataset.name()),
            &xml,
            |b, xml| b.iter(|| GrammarRePair::default().compress_xml(xml)),
        );
        let (grammar, _) = TreeRePair::default().compress_xml(&xml);
        group.bench_with_input(
            BenchmarkId::new("grammarrepair_on_grammar", dataset.name()),
            &grammar,
            |b, grammar| {
                b.iter(|| {
                    let mut g = grammar.clone();
                    GrammarRePair::default().recompress(&mut g)
                })
            },
        );
    }
    group.finish();
}

/// Frequency-bucket queue vs naive table-rescan selection, on the
/// selection-bound heterogeneous event-stream corpus (repetitive *and*
/// label-diverse) and on a near-pathological low-diversity corpus where both
/// selectors are equivalent. Outputs are byte-identical (see the
/// `selector_equivalence` test suite); only wall-time differs.
fn bench_selectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("digram_selector");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let corpora = [
        ("heterogeneous", heterogeneous_records_like(500, 10_000)),
        ("exi_weblog", Dataset::ExiWeblog.generate(0.05)),
    ];
    for (name, xml) in &corpora {
        group.bench_with_input(BenchmarkId::new("queue", name), xml, |b, xml| {
            b.iter(|| TreeRePair::default().compress_xml(xml))
        });
        let naive = TreeRePair::new(TreeRePairConfig {
            selector: DigramSelector::NaiveScan,
            ..TreeRePairConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("naive", name), xml, |b, xml| {
            b.iter(|| naive.compress_xml(xml))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression, bench_selectors);
criterion_main!(benches);
