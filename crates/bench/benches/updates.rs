//! Criterion benches for the dynamic part of the evaluation (Figures 4–6):
//! applying updates on the grammar, GrammarRePair recompression of an updated
//! grammar, and the update–decompress–compress baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use datasets::workload::{random_rename_sequence, random_update_sequence, WorkloadMix};
use grammar_repair::repair::GrammarRePair;
use grammar_repair::udc::update_decompress_compress;
use grammar_repair::update::{apply_batch, apply_update};
use treerepair::{TreeRePair, TreeRePairConfig};

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("updates");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let xml = dataset.generate(0.05);
        let ops = random_rename_sequence(&xml, 30, 1);
        let (compressed, _) = TreeRePair::default().compress_xml(&xml);

        group.bench_with_input(
            BenchmarkId::new("apply_30_renames", dataset.name()),
            &(&compressed, &ops),
            |b, (g, ops)| {
                b.iter(|| {
                    let mut g = (*g).clone();
                    for op in ops.iter() {
                        apply_update(&mut g, op).unwrap();
                    }
                    g
                })
            },
        );

        let mut updated = compressed.clone();
        for op in &ops {
            apply_update(&mut updated, op).unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("grammarrepair_recompress", dataset.name()),
            &updated,
            |b, updated| {
                b.iter(|| {
                    let mut g = updated.clone();
                    GrammarRePair::default().recompress(&mut g)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("udc_decompress_compress", dataset.name()),
            &updated,
            |b, updated| {
                b.iter(|| {
                    update_decompress_compress(updated, &[], TreeRePairConfig::default()).unwrap()
                })
            },
        );
    }
    group.finish();
}

/// Batched vs one-at-a-time path isolation on a high-locality 100-update
/// workload (mostly renames and inserts clustered under shared ancestors —
/// the FLUX-style shape batching is built for). Both paths produce
/// byte-identical documents (see `tests/updates_differential.rs`); only
/// wall-time differs: the one-at-a-time path recomputes the grammar-wide
/// size tables per operation, the batched path once per chunk.
fn bench_updates_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("updates_batched");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let xml = dataset.generate(0.05);
        let ops = random_update_sequence(&xml, 100, 11, WorkloadMix::clustered(0.9));
        let (compressed, _) = TreeRePair::default().compress_xml(&xml);

        group.bench_with_input(
            BenchmarkId::new("one_at_a_time_100", dataset.name()),
            &(&compressed, &ops),
            |b, (g, ops)| {
                b.iter(|| {
                    let mut g = (*g).clone();
                    for op in ops.iter() {
                        apply_update(&mut g, op).unwrap();
                    }
                    g
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched_100", dataset.name()),
            &(&compressed, &ops),
            |b, (g, ops)| {
                b.iter(|| {
                    let mut g = (*g).clone();
                    apply_batch(&mut g, ops).unwrap();
                    g
                })
            },
        );
    }
    group.finish();
}

/// Batched vs one-at-a-time on the paper's Section V-C **90/10 insert/delete
/// mix** (uniform targets, no renames). Before the delete-tolerant planner
/// every delete flushed its isolation chunk, degrading this workload toward
/// one-at-a-time; with removed-region remapping the mix batches at full
/// length, so batched is expected to hold a multiple-x advantage here too
/// (gated ≥3× by the committed baseline discipline).
fn bench_updates_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("updates_mixed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let xml = dataset.generate(0.05);
        let ops = random_update_sequence(&xml, 100, 23, WorkloadMix::paper_mix(0.0));
        let (compressed, _) = TreeRePair::default().compress_xml(&xml);

        group.bench_with_input(
            BenchmarkId::new("one_at_a_time_100", dataset.name()),
            &(&compressed, &ops),
            |b, (g, ops)| {
                b.iter(|| {
                    let mut g = (*g).clone();
                    for op in ops.iter() {
                        apply_update(&mut g, op).unwrap();
                    }
                    g
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched_100", dataset.name()),
            &(&compressed, &ops),
            |b, (g, ops)| {
                b.iter(|| {
                    let mut g = (*g).clone();
                    apply_batch(&mut g, ops).unwrap();
                    g
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_updates, bench_updates_batched, bench_updates_mixed);
criterion_main!(benches);
