//! Criterion benches for the read path: full traversals and path-query
//! evaluation over the pointer DOM, the succinct DOM and the compressed
//! grammar (extension experiment; not a table of the paper, but quantifies
//! the cost of reading through the compression that the paper's DOM use case
//! relies on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use grammar_repair::navigate::PreorderLabels;
use grammar_repair::query::PathQuery;
use grammar_repair::repair::GrammarRePair;
use succinct_xml::SuccinctDom;

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let xml = dataset.generate(0.1);
        let dom = SuccinctDom::build(&xml);
        let (grammar, _) = GrammarRePair::default().compress_xml(&xml);

        group.bench_with_input(BenchmarkId::new("pointer_dom", dataset.name()), &xml, |b, xml| {
            b.iter(|| {
                let mut count = 0usize;
                for n in xml.preorder() {
                    count += xml.label(n).len();
                }
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("succinct_dom", dataset.name()), &dom, |b, dom| {
            b.iter(|| {
                let mut count = 0usize;
                for v in dom.preorder() {
                    count += dom.label(v).len();
                }
                count
            })
        });
        group.bench_with_input(
            BenchmarkId::new("grammar_cursor", dataset.name()),
            &grammar,
            |b, grammar| {
                b.iter(|| {
                    let mut count = 0usize;
                    for t in PreorderLabels::new(grammar) {
                        count += grammar.symbols.name(t).len();
                    }
                    count
                })
            },
        );
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_queries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let xml = Dataset::XMark.generate(0.2);
    let (grammar, _) = GrammarRePair::default().compress_xml(&xml);
    for text in ["//item/name", "/site/regions//keyword", "//person"] {
        let query = PathQuery::parse(text).unwrap();
        group.bench_with_input(BenchmarkId::new("grammar_count", text), &query, |b, query| {
            b.iter(|| query.count(&grammar))
        });
        group.bench_with_input(BenchmarkId::new("grammar_stream", text), &query, |b, query| {
            b.iter(|| query.evaluate(&grammar).len())
        });
        group.bench_with_input(BenchmarkId::new("uncompressed", text), &query, |b, query| {
            b.iter(|| query.evaluate_uncompressed(&xml).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traversal, bench_queries);
criterion_main!(benches);
