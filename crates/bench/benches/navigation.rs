//! Criterion benches for the read path: full traversals and path-query
//! evaluation over the pointer DOM, the succinct DOM (BP shape), the LOUDS
//! encoding and the compressed grammar (extension experiment; not a table of
//! the paper, but quantifies the cost of reading through the compression that
//! the paper's DOM use case relies on).
//!
//! Both groups are part of the committed `BENCH_compression.json` baseline
//! and gated in CI (`bench_gate`): a >20 % regression on any entry fails.
//!
//! * `traversal` — visit every node in document order and sum label lengths.
//!   The grammar side builds its [`NavTables`] once (the `CompressedDom`
//!   caching pattern) and streams through `PreorderLabels::with_tables`.
//! * `query` — materialize path queries on XMark: the memoized
//!   output-sensitive `evaluate` (tables prebuilt once, memo per call), the
//!   cursor-based `evaluate_streaming` oracle, the grammar-only `count`, and
//!   the uncompressed pointer-tree evaluation as the baseline.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use grammar_repair::navigate::{NavTables, PreorderLabels};
use grammar_repair::query::PathQuery;
use grammar_repair::repair::GrammarRePair;
use succinct_xml::louds::LoudsTree;
use succinct_xml::SuccinctDom;

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let xml = dataset.generate(0.1);
        let dom = SuccinctDom::build(&xml);
        let louds = LoudsTree::from_xml(&xml);
        let (grammar, _) = GrammarRePair::default().compress_xml(&xml);
        let tables = Arc::new(NavTables::build(&grammar));

        group.bench_with_input(BenchmarkId::new("pointer_dom", dataset.name()), &xml, |b, xml| {
            b.iter(|| {
                let mut count = 0usize;
                for n in xml.preorder() {
                    count += xml.label(n).len();
                }
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("succinct_dom", dataset.name()), &dom, |b, dom| {
            b.iter(|| {
                let mut count = 0usize;
                for v in dom.preorder() {
                    count += dom.label(v).len();
                }
                count
            })
        });
        // LOUDS level-order sweep: every step is select0/rank0 arithmetic on
        // the unary degree sequences — the honest number for the second
        // succinct baseline now that the zero directory exists.
        group.bench_with_input(BenchmarkId::new("louds_bfs", dataset.name()), &louds, |b, louds| {
            b.iter(|| {
                let mut degrees = 0usize;
                for i in 0..louds.node_count() {
                    let v = louds.node_at_level_order(i).expect("index in range");
                    degrees += louds.degree(v);
                }
                degrees
            })
        });
        group.bench_with_input(
            BenchmarkId::new("grammar_cursor", dataset.name()),
            &(&grammar, &tables),
            |b, (grammar, tables)| {
                b.iter(|| {
                    let mut count = 0usize;
                    for t in PreorderLabels::with_tables(grammar, Arc::clone(tables)) {
                        count += grammar.symbols.name(t).len();
                    }
                    count
                })
            },
        );
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let xml = Dataset::XMark.generate(0.2);
    let (grammar, _) = GrammarRePair::default().compress_xml(&xml);
    let tables = NavTables::build(&grammar);
    for text in ["//item/name", "/site/regions//keyword", "//person"] {
        let query = PathQuery::parse(text).unwrap();
        group.bench_with_input(BenchmarkId::new("grammar_count", text), &query, |b, query| {
            b.iter(|| query.count(&grammar))
        });
        group.bench_with_input(
            BenchmarkId::new("grammar_evaluate", text),
            &query,
            |b, query| b.iter(|| query.evaluate_with_tables(&grammar, &tables).len()),
        );
        group.bench_with_input(BenchmarkId::new("grammar_stream", text), &query, |b, query| {
            b.iter(|| query.evaluate_streaming(&grammar).len())
        });
        group.bench_with_input(BenchmarkId::new("uncompressed", text), &query, |b, query| {
            b.iter(|| query.evaluate_uncompressed(&xml).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traversal, bench_queries);
criterion_main!(benches);
