//! Criterion benches for PR 9's ingestion path: the `ingest_queue` group
//! measures batch coalescing in front of the durable store (48 per-document
//! submissions drained as one `ApplyMany` record vs 48 direct
//! `apply_batch` commits), and the `cold_start` group measures opening a
//! store from a paged v3 checkpoint (documents decoded lazily on first
//! touch) against the committed `recovery/replay_*` baselines, which replay
//! the same history record by record.
//!
//! Both groups run on the in-memory fault-injection filesystem for the same
//! reason as `store_durable`: they gate the *software* cost (framing,
//! group-commit protocol, checkpoint decoding), not fsync hardware noise.
//! The steady-state batches are rename-only so each iteration re-applies
//! identical, always-valid work — the paper's 90/10 insert/delete mix
//! mutates the tree and cannot be replayed repeatedly from a fixed state;
//! the coalescing win being measured (records, fsyncs and maintenance
//! sweeps per submitted batch) is workload-agnostic.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::catalog::Dataset;
use datasets::workload::{random_update_sequence, WorkloadMix};
use grammar_repair::durable::DurableStore;
use grammar_repair::queue::IngestQueue;
use grammar_repair::store::DocId;
use grammar_repair::wal::testing::FailpointFs;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

const FLEET: usize = 6;
/// Submissions per drain: 8 batches of 6 ops for each of the 6 documents.
const BATCHES_PER_DOC: usize = 8;
const OPS_PER_BATCH: usize = 6;

fn fleet() -> Vec<XmlTree> {
    (0..FLEET)
        .map(|i| Dataset::ExiWeblog.generate(0.03 + 0.004 * i as f64))
        .collect()
}

/// Steady-state per-document batches (rename-only, locality-clustered):
/// `BATCHES_PER_DOC` batches of `OPS_PER_BATCH` ops per document, valid on
/// every re-application.
fn batch_stream(docs: &[XmlTree], ids: &[DocId]) -> Vec<(DocId, Vec<UpdateOp>)> {
    let mut batches = Vec::new();
    for (d, (&id, xml)) in ids.iter().zip(docs).enumerate() {
        let ops = random_update_sequence(
            xml,
            BATCHES_PER_DOC * OPS_PER_BATCH,
            0x0E57 + d as u64,
            WorkloadMix {
                rename_probability: 1.0,
                locality: 0.7,
                ..WorkloadMix::default()
            },
        );
        for chunk in ops.chunks(OPS_PER_BATCH) {
            batches.push((id, chunk.to_vec()));
        }
    }
    batches
}

fn durable_fleet(docs: &[XmlTree]) -> (Arc<FailpointFs>, Arc<DurableStore>, Vec<DocId>) {
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").expect("fresh dir");
    let store = Arc::new(store);
    let ids: Vec<DocId> = docs
        .iter()
        .map(|xml| store.load_xml(xml).expect("dataset labels intern"))
        .collect();
    (fs, store, ids)
}

/// An in-memory image holding a **paged v3 checkpoint** that folds
/// `records` committed log records (the log itself is truncated): the
/// cold-start counterpart of `store_durable`'s `logged_fs`, whose
/// recovery benches replay the same history record by record.
fn checkpointed_fs(docs: &[XmlTree], records: usize) -> Arc<FailpointFs> {
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").expect("fresh dir");
    let ids: Vec<DocId> = docs
        .iter()
        .map(|xml| store.load_xml(xml).expect("dataset labels intern"))
        .collect();
    let jobs: Vec<(DocId, Vec<UpdateOp>)> = ids
        .iter()
        .zip(docs)
        .enumerate()
        .map(|(d, (&id, xml))| {
            let ops = random_update_sequence(
                xml,
                48,
                0xD0_0D + d as u64,
                WorkloadMix {
                    rename_probability: 1.0,
                    ..WorkloadMix::default()
                },
            );
            (id, ops)
        })
        .collect();
    let mut committed = ids.len();
    'outer: loop {
        for (id, ops) in &jobs {
            if committed >= records {
                break 'outer;
            }
            store.apply_batch(*id, ops).expect("renames stay valid");
            committed += 1;
        }
    }
    let report = store.checkpoint().expect("in-memory fs cannot fail");
    assert!(report.log_truncated, "quiescent checkpoint truncates the log");
    fs
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_queue");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    let docs = fleet();

    // --- Coalescing win: 48 direct commits vs one drained ApplyMany ------
    let (direct_fs, direct_store, direct_ids) = durable_fleet(&docs);
    let direct_batches = batch_stream(&docs, &direct_ids);
    let (queued_fs, queued_store, queued_ids) = durable_fleet(&docs);
    let queued_batches = batch_stream(&docs, &queued_ids);
    let queue = IngestQueue::new(Arc::clone(&queued_store));

    // Outside the measurement loop: the fsync-per-op contract. One warmup
    // round on each store, counting syncs.
    let before = direct_fs.sync_count();
    for (id, ops) in &direct_batches {
        direct_store.apply_batch(*id, ops).expect("renames stay valid");
    }
    let direct_syncs = direct_fs.sync_count() - before;
    let before = queued_fs.sync_count();
    for (id, ops) in &queued_batches {
        queue.submit(*id, ops.clone()).expect("unbounded queue");
    }
    let report = queue.flush();
    let queued_syncs = queued_fs.sync_count() - before;
    assert_eq!(report.batches, FLEET * BATCHES_PER_DOC);
    assert_eq!(report.jobs, FLEET, "one coalesced job per document");
    assert_eq!(direct_syncs, (FLEET * BATCHES_PER_DOC) as u64);
    assert_eq!(queued_syncs, 1, "one drain, one group-committed fsync");

    group.bench_with_input(
        BenchmarkId::new("paper_mix_6docs", "direct_48_batches"),
        &(&direct_store, &direct_batches),
        |b, (store, batches)| {
            b.iter(|| {
                for (id, ops) in batches.iter() {
                    store.apply_batch(*id, ops).expect("renames stay valid");
                }
                batches.len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("paper_mix_6docs", "queued_48_batches"),
        &(&queue, &queued_batches),
        |b, (queue, batches)| {
            b.iter(|| {
                let tickets: Vec<_> = batches
                    .iter()
                    .map(|(id, ops)| queue.submit(*id, ops.clone()).expect("unbounded queue"))
                    .collect();
                queue.flush();
                for ticket in tickets {
                    queue.wait(ticket).expect("renames stay valid");
                }
                batches.len()
            })
        },
    );
    group.finish();

    // --- Cold start from a paged checkpoint vs log replay -----------------
    let mut group = c.benchmark_group("cold_start");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    for records in [64usize, 256, 1024] {
        let fs = checkpointed_fs(&docs, records);
        group.bench_with_input(
            BenchmarkId::new("open", format!("{records}_records")),
            &fs,
            |b, fs| {
                b.iter(|| {
                    let (store, report) =
                        DurableStore::open_with(fs.clone(), "db").expect("image is intact");
                    assert_eq!(report.replayed, 0, "checkpoint covers the history");
                    assert_eq!(report.lazy_docs, FLEET, "open decodes no documents");
                    store.len()
                })
            },
        );
        let fs = checkpointed_fs(&docs, records);
        group.bench_with_input(
            BenchmarkId::new("open_first_touch", format!("{records}_records")),
            &fs,
            |b, fs| {
                b.iter(|| {
                    let (store, _) =
                        DurableStore::open_with(fs.clone(), "db").expect("image is intact");
                    let id = store.doc_ids()[0];
                    store.to_xml(id).expect("payload is intact").to_xml().len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
