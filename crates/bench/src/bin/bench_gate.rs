//! CI regression gate over the committed bench baseline.
//!
//! Compares a fresh bench run (the JSON the criterion shim writes when
//! `BENCH_JSON` is set) against the committed `BENCH_compression.json` and
//! fails when any benchmark regressed by more than the tolerance (default
//! 20 %, overridable via `BENCH_GATE_TOLERANCE` or the third argument).
//!
//! ```text
//! bench_gate <baseline.json> <results.json>... [tolerance]
//! ```
//!
//! Several results files (one per bench binary — the criterion shim writes
//! one JSON per process) are merged before comparison, so one gate run covers
//! the compression *and* updates benches against the single committed
//! baseline.
//!
//! Benchmarks present in the baseline but missing from the run fail the gate
//! (a silently dropped bench is a coverage regression); new benchmarks only
//! warn, so a PR adding a group can gate on it from the next baseline on.
//!
//! The baseline was committed from whatever machine last regenerated it, and
//! CI runs on shared runners with different (and varying) hardware. To keep
//! the gate about *code* and not about the runner, ratios are normalized by
//! the median ratio across all matched benchmarks: a uniformly slower runner
//! shifts every ratio equally and is divided out, while a regression in one
//! benchmark barely moves the median and still trips the gate. The scale is
//! clamped to [`SCALE_MIN`, `SCALE_MAX`] so a *uniform code regression* (or a
//! broad improvement whose baseline was not regenerated) cannot hide inside
//! the normalization: beyond that window the residual counts against every
//! benchmark and the gate reports that the baseline machine delta cannot
//! explain the shift. Set `BENCH_GATE_NO_NORMALIZE=1` to compare raw ratios
//! (useful when baseline and run come from the same machine).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parses the shim's JSON array: one `{"group": …, "id": …, "median_ns": …,
/// "iterations": …}` object per line. Returns `(group/id, median_ns)`.
fn parse_results(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(group) = extract_str(line, "group") else { continue };
        let Some(id) = extract_str(line, "id") else { continue };
        let Some(median) = extract_num(line, "median_ns") else { continue };
        out.insert(format!("{group}/{id}"), median);
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_gate <baseline.json> <results.json>... [tolerance]");
        return ExitCode::from(2);
    }
    // A trailing numeric argument is the tolerance; everything between the
    // baseline and it is a results file.
    let trailing_tolerance = args.last().and_then(|s| s.parse::<f64>().ok());
    if trailing_tolerance.is_some() {
        args.pop();
    }
    let tolerance: f64 = trailing_tolerance
        .or_else(|| {
            std::env::var("BENCH_GATE_TOLERANCE")
                .ok()
                .map(|s| s.parse().expect("tolerance must be a number like 0.20"))
        })
        .unwrap_or(0.20);
    if args.len() < 3 {
        eprintln!("usage: bench_gate <baseline.json> <results.json>... [tolerance]");
        return ExitCode::from(2);
    }

    let baseline_text = std::fs::read_to_string(&args[1])
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", args[1]));
    let baseline = parse_results(&baseline_text);
    let mut results = BTreeMap::new();
    for path in &args[2..] {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read results {path}: {e}"));
        for (name, median) in parse_results(&text) {
            if results.insert(name.clone(), median).is_some() {
                panic!("benchmark {name} appears in more than one results file");
            }
        }
    }
    assert!(!baseline.is_empty(), "baseline {} parsed to zero entries", args[1]);

    // Hardware normalization: divide out the runner's overall speed delta
    // (median of all ratios) so only relative shifts count as regressions.
    const SCALE_MIN: f64 = 0.67;
    const SCALE_MAX: f64 = 1.5;
    let mut ratios: Vec<f64> = baseline
        .iter()
        .filter_map(|(name, &base_ns)| results.get(name).map(|&now_ns| now_ns / base_ns))
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let normalize = std::env::var("BENCH_GATE_NO_NORMALIZE").is_err();
    let raw_scale = if normalize && !ratios.is_empty() {
        ratios[ratios.len() / 2]
    } else {
        1.0
    };
    let scale = raw_scale.clamp(SCALE_MIN, SCALE_MAX);
    println!(
        "runner speed scale vs baseline machine: {raw_scale:.2}x (normalization {})",
        if normalize { "on" } else { "off" }
    );
    if scale != raw_scale {
        println!(
            "WARNING: median ratio {raw_scale:.2}x is outside the plausible machine-delta \
             window [{SCALE_MIN}, {SCALE_MAX}] and was clamped to {scale:.2}x — either a \
             uniform code perf shift or a stale baseline; regenerate \
             BENCH_compression.json if this change is expected."
        );
    }

    let mut failures: Vec<String> = Vec::new();
    println!(
        "{:<55} {:>14} {:>14} {:>8}",
        "benchmark", "baseline µs", "current µs", "ratio"
    );
    for (name, &base_ns) in &baseline {
        match results.get(name) {
            None => failures.push(format!("{name}: present in baseline but not in this run")),
            Some(&now_ns) => {
                let ratio = now_ns / base_ns / scale;
                let flag = if ratio > 1.0 + tolerance { " REGRESSED" } else { "" };
                println!(
                    "{:<55} {:>14.1} {:>14.1} {:>7.2}x{}",
                    name,
                    base_ns / 1e3,
                    now_ns / 1e3,
                    ratio,
                    flag
                );
                if ratio > 1.0 + tolerance {
                    failures.push(format!(
                        "{name}: {:.1} µs vs baseline {:.1} µs (normalized {:.0}% over the {:.0}% budget)",
                        now_ns / 1e3,
                        base_ns / 1e3,
                        (ratio - 1.0) * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
    for name in results.keys() {
        if !baseline.contains_key(name) {
            println!("note: {name} is new (not in the committed baseline yet)");
        }
    }

    if failures.is_empty() {
        println!(
            "\nbench gate passed: {} benchmarks within {:.0}% of the baseline",
            baseline.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
