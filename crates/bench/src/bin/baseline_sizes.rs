//! Extension experiment: size comparison of all in-memory representations.
//!
//! Not a table of the paper, but quantifies its framing: the introduction
//! cites minimal DAGs (~10 % of the edges) and the related-work section cites
//! succinct DOM trees as the static alternatives to SLCF grammar compression.
//! The binary prints, per corpus document, the structural size (edges) of the
//! binary tree, the minimal DAG, the TreeRePair grammar and the GrammarRePair
//! grammar, plus the byte footprints of the pointer DOM, the succinct DOM and
//! the serialized grammars.

use bench_harness::Options;
use dag_xml::Dag;
use datasets::catalog::Dataset;
use grammar_repair::repair::GrammarRePair;
use sltgrammar::{serialize, SymbolTable};
use succinct_xml::SuccinctDom;
use treerepair::TreeRePair;
use xmltree::binary::to_binary;

fn main() {
    let opts = Options::from_args();
    println!("Baseline comparison — structural and byte sizes (scale {:.2})\n", opts.scale);
    println!(
        "{:<14} {:>9} | {:>9} {:>9} {:>9} {:>9} | {:>11} {:>11} {:>11}",
        "dataset",
        "#elems",
        "bin edges",
        "DAG",
        "TreeRP",
        "GramRP",
        "ptr DOM B",
        "succinct B",
        "grammar B"
    );
    for dataset in Dataset::all() {
        let xml = dataset.generate(opts.scale);
        let n = xml.node_count();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).expect("valid document");
        let dag = Dag::build(&bin, &symbols);
        let (tree_grammar, _) = TreeRePair::default().compress_binary(symbols.clone(), bin.clone());
        let (grammar, _) = GrammarRePair::default().compress_xml(&xml);
        let succinct = SuccinctDom::build(&xml);
        let pointer_bytes: usize = xml
            .preorder()
            .iter()
            .map(|&v| 8 + 24 + xml.children(v).len() * 4 + xml.label(v).len())
            .sum();
        println!(
            "{:<14} {:>9} | {:>9} {:>9} {:>9} {:>9} | {:>11} {:>11} {:>11}",
            dataset.name(),
            n,
            bin.edge_count(),
            dag.edge_count(),
            tree_grammar.edge_count(),
            grammar.edge_count(),
            pointer_bytes,
            succinct.size_bytes(),
            serialize::encoded_size(&grammar)
        );
    }
    println!("\nEvery column derives the same document; smaller is better.");
}
