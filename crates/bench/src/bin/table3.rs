//! Regenerates Table III: document statistics and GrammarRePair compression
//! results for the six evaluation documents.

use bench_harness::{table3_row, Options};
use datasets::catalog::Dataset;

fn main() {
    let opts = Options::from_args();
    println!("Table III — document statistics and GrammarRePair compression");
    println!("(synthetic corpus at scale {:.2}; paper values in parentheses)\n", opts.scale);
    println!(
        "{:<14} {:>10} {:>5} {:>10} {:>12} {:>14} {:>10}",
        "dataset", "#edges", "dp", "c-edges", "ratio (%)", "paper ratio", "time"
    );
    for dataset in Dataset::all() {
        let row = table3_row(dataset, opts.scale);
        println!(
            "{:<14} {:>10} {:>5} {:>10} {:>12.2} {:>13.2}% {:>9.2?}",
            row.dataset.name(),
            row.edges,
            row.depth,
            row.c_edges,
            row.ratio_percent,
            dataset.paper_ratio_percent(),
            row.time
        );
    }
}
