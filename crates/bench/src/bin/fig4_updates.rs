//! Regenerates Figure 4: update overhead without recompression (top plot) and
//! under GrammarRePair (bottom plot) for the moderately compressing files
//! XMark, Medline and Treebank.

use bench_harness::{update_experiment, Options};
use datasets::catalog::Dataset;

fn main() {
    let opts = Options::from_args();
    println!(
        "Figure 4 — updates on moderately compressing files (scale {:.2}, {} updates, recompression every {})\n",
        opts.scale, opts.updates, opts.every
    );
    for dataset in Dataset::moderate() {
        let exp = update_experiment(dataset, opts.scale, opts.updates, opts.every, opts.seed);
        println!(
            "{} ({}) — initial grammar {} edges",
            dataset.name(),
            dataset.tag(),
            exp.initial_edges
        );
        println!(
            "{:>10} {:>14} {:>18} {:>16} {:>18}",
            "#updates", "naive edges", "naive overhead", "GR edges", "GR overhead"
        );
        for cp in &exp.checkpoints {
            println!(
                "{:>10} {:>14} {:>17.3}x {:>16} {:>17.4}x",
                cp.updates,
                cp.naive_edges,
                cp.naive_overhead(),
                cp.grammarrepair_edges,
                cp.grammarrepair_overhead(),
            );
        }
        println!();
    }
    println!("Paper: naive overhead up to ~1.4x; GrammarRePair overhead below 1.008x.");
}
