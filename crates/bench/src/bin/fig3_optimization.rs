//! Regenerates Figure 3: effect of the fragment-export optimization on
//! grammar blow-up and runtime, over the `G_n` family (lists of 64 … 4096
//! sibling pairs).

use bench_harness::optimization_point;

fn main() {
    println!("Figure 3 — effect of the optimization (G_n family)\n");
    println!(
        "{:>6} {:>12} {:>12} | {:>14} {:>12} | {:>14} {:>12}",
        "n", "list length", "final edges", "opt. blow-up", "opt. time", "non-opt. blow", "non-opt time"
    );
    // n = 5..=11 corresponds to lists of 64 .. 4096 sibling pairs, as in the paper.
    for n in 5..=11usize {
        let p = optimization_point(n);
        println!(
            "{:>6} {:>12} {:>12} | {:>13.2}x {:>11.2?} | {:>13.2}x {:>11.2?}",
            p.n,
            1usize << (p.n + 1),
            p.final_edges,
            p.optimized_blowup,
            p.optimized_time,
            p.unoptimized_blowup,
            p.unoptimized_time,
        );
    }
    println!("\nPaper: optimized blow-up stays at 1.2–1.7 and runtime linear in the");
    println!("grammar size; without the optimization the blow-up grows with the");
    println!("original tree size (up to >110) and runtime scales much worse.");
}
