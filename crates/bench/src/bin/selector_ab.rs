//! A/B comparison of the two digram selectors (frequency-bucket queue vs the
//! naive per-round occurrence-table rescan) on the bench corpus.
//!
//! Verifies on every input that both selectors produce byte-identical output
//! grammars over the same number of rounds, then reports wall-clock times and
//! the speedup. The heterogeneous event-stream corpus is the selection-bound
//! regime (repetitive *and* label-diverse); EXI-Weblog is the opposite extreme
//! (few distinct digrams, selection never dominates).

use std::time::Instant;

use datasets::random::treebank_like;
use datasets::regular::{exi_weblog_like, heterogeneous_records_like};
use sltgrammar::text::print_grammar;
use sltgrammar::SymbolTable;
use treerepair::{DigramSelector, TreeRePair, TreeRePairConfig};
use xmltree::binary::to_binary;
use xmltree::XmlTree;

fn measure(name: &str, xml: &XmlTree) {
    let mut symbols = SymbolTable::new();
    let bin = to_binary(xml, &mut symbols).expect("valid document");
    let naive_cfg = TreeRePairConfig {
        selector: DigramSelector::NaiveScan,
        ..TreeRePairConfig::default()
    };
    let t0 = Instant::now();
    let (g_naive, s_naive) = TreeRePair::new(naive_cfg).compress_binary(symbols.clone(), bin.clone());
    let naive = t0.elapsed();
    let t1 = Instant::now();
    let (g_queue, s_queue) = TreeRePair::default().compress_binary(symbols, bin);
    let queue = t1.elapsed();

    assert_eq!(s_naive.rounds, s_queue.rounds, "round counts must agree");
    assert_eq!(
        print_grammar(&g_naive),
        print_grammar(&g_queue),
        "output grammars must be byte-identical"
    );

    println!(
        "{name}: edges={} rounds={} ratio={:.4} naive={:.1?} queue={:.1?} speedup={:.2}x",
        s_queue.input_edges,
        s_queue.rounds,
        s_queue.ratio(),
        naive,
        queue,
        naive.as_secs_f64() / queue.as_secs_f64()
    );
}

fn main() {
    // Scale via `SELECTOR_AB_SCALE=small` for quick runs.
    let small = std::env::var("SELECTOR_AB_SCALE").as_deref() == Ok("small");
    let s = if small { 1 } else { 4 };
    measure(
        "heterogeneous(2000 schemas)",
        &heterogeneous_records_like(2000, 10_000 * s),
    );
    measure(
        "heterogeneous(1000 schemas)",
        &heterogeneous_records_like(1000, 7_500 * s),
    );
    measure("treebank", &treebank_like(150 * s, 42));
    measure("exi_weblog", &exi_weblog_like(5_000 * s));
}
