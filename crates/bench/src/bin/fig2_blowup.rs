//! Regenerates Figure 2: blow-up during recompression (max intermediate
//! grammar size / final grammar size), one bar per dataset.

use bench_harness::{blowup_row, Options};
use datasets::catalog::Dataset;

fn main() {
    let opts = Options::from_args();
    println!("Figure 2 — blow-up during recompression, scale {:.2}\n", opts.scale);
    println!(
        "{:<14} {:>12} {:>14} {:>9} {:>12} {:>14}",
        "dataset", "final edges", "max intermed.", "blow-up", "final ratio", "ratio at max"
    );
    for dataset in Dataset::all() {
        let row = blowup_row(dataset, opts.scale);
        println!(
            "{:<14} {:>12} {:>14} {:>8.2}x {:>11.2}% {:>13.2}%",
            row.dataset.name(),
            row.final_edges,
            row.max_intermediate_edges,
            row.blowup,
            row.final_ratio_percent,
            row.intermediate_ratio_percent,
        );
    }
    println!("\nPaper: worst blow-up just over 2x (extremely compressing files),");
    println!("most files only a few percent above 1x.");
}
