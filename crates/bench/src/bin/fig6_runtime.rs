//! Regenerates Figure 6: runtime of GrammarRePair recompression versus
//! update–decompress–compress after 300 random renames, plus the space
//! comparison reported in the text of Section V-C.

use bench_harness::{runtime_row, Options};
use datasets::catalog::Dataset;

fn main() {
    let opts = Options::from_args();
    let renames = 300usize;
    println!(
        "Figure 6 — recompression runtime after {renames} random renames (scale {:.2})\n",
        opts.scale
    );
    println!(
        "{:<14} {:>9} | {:>11} {:>12} {:>12} | {:>10} {:>10} | {:>10} {:>10}",
        "dataset",
        "#edges",
        "GR time",
        "udc(TR) time",
        "udc(GR) time",
        "GR/udc(TR)",
        "GR/udc(GR)",
        "GR peak",
        "udc peak"
    );
    for dataset in Dataset::all() {
        let row = runtime_row(dataset, opts.scale, renames, opts.seed);
        let rel_tr = row.grammarrepair_time.as_secs_f64() / row.udc_treerepair_time.as_secs_f64().max(1e-9);
        let rel_gr = row.grammarrepair_time.as_secs_f64() / row.udc_grammarrepair_time.as_secs_f64().max(1e-9);
        println!(
            "{:<14} {:>9} | {:>10.2?} {:>12.2?} {:>12.2?} | {:>9.2}x {:>9.2}x | {:>10} {:>10}",
            row.dataset.name(),
            row.edges,
            row.grammarrepair_time,
            row.udc_treerepair_time,
            row.udc_grammarrepair_time,
            rel_tr,
            rel_gr,
            row.grammarrepair_peak_edges,
            row.udc_peak_edges,
        );
    }
    println!("\nGR = GrammarRePair recompression of the updated grammar;");
    println!("udc(TR)/udc(GR) = decompress + compress with TreeRePair / GrammarRePair-on-tree.");
    println!("Paper: GrammarRePair beats udc for documents above ~100k edges and uses");
    println!("6–23% of udc's space (here approximated by peak grammar vs decompressed tree).");
}
