//! Regenerates the static compression comparison of Section V-B: TreeRePair vs
//! GrammarRePair applied to trees vs GrammarRePair applied to grammars.

use bench_harness::{static_comparison_row, Options};
use datasets::catalog::Dataset;

fn main() {
    let opts = Options::from_args();
    println!("Static compression comparison (Section V-B), scale {:.2}\n", opts.scale);
    println!(
        "{:<14} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "dataset", "#edges", "TR edges", "TR time", "GR(tree)", "time", "GR(gram)", "time"
    );
    for dataset in Dataset::all() {
        let row = static_comparison_row(dataset, opts.scale);
        println!(
            "{:<14} {:>9} | {:>9} {:>8.2?} | {:>9} {:>8.2?} | {:>9} {:>8.2?}",
            row.dataset.name(),
            row.edges,
            row.treerepair_edges,
            row.treerepair_time,
            row.grammarrepair_tree_edges,
            row.grammarrepair_tree_time,
            row.grammarrepair_grammar_edges,
            row.grammarrepair_grammar_time,
        );
    }
    println!("\nTR = TreeRePair, GR(tree) = GrammarRePair on the tree,");
    println!("GR(gram) = GrammarRePair recompressing the TreeRePair grammar.");
}
