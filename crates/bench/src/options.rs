//! Tiny command-line / environment option parsing for the experiment binaries
//! (no external dependencies).

/// Options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Document scale factor (1.0 ≈ 1/20 of the paper's document sizes).
    pub scale: f64,
    /// Number of updates in the dynamic experiments.
    pub updates: usize,
    /// Recompression interval (the paper uses 100).
    pub every: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 1.0,
            updates: 2000,
            every: 100,
            seed: 0xC0FFEE,
        }
    }
}

impl Options {
    /// Parses `--scale`, `--updates`, `--every` and `--seed` from the process
    /// arguments, falling back to the `BENCH_SCALE`, `BENCH_UPDATES`,
    /// `BENCH_EVERY` and `BENCH_SEED` environment variables and then to the
    /// defaults.
    pub fn from_args() -> Self {
        let mut opts = Options::default();
        if let Some(v) = std::env::var("BENCH_SCALE").ok().and_then(|s| s.parse().ok()) {
            opts.scale = v;
        }
        if let Some(v) = std::env::var("BENCH_UPDATES").ok().and_then(|s| s.parse().ok()) {
            opts.updates = v;
        }
        if let Some(v) = std::env::var("BENCH_EVERY").ok().and_then(|s| s.parse().ok()) {
            opts.every = v;
        }
        if let Some(v) = std::env::var("BENCH_SEED").ok().and_then(|s| s.parse().ok()) {
            opts.seed = v;
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Ok(v) = args[i + 1].parse() {
                        opts.scale = v;
                    }
                }
                "--updates" => {
                    if let Ok(v) = args[i + 1].parse() {
                        opts.updates = v;
                    }
                }
                "--every" => {
                    if let Ok(v) = args[i + 1].parse() {
                        opts.every = v;
                    }
                }
                "--seed" => {
                    if let Ok(v) = args[i + 1].parse() {
                        opts.seed = v;
                    }
                }
                _ => {}
            }
            i += 2;
        }
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let o = Options::default();
        assert_eq!(o.every, 100);
        assert!(o.scale > 0.0);
        assert!(o.updates >= 100);
    }
}
