//! # bench-harness — regenerating the paper's tables and figures
//!
//! Shared experiment logic behind the `table3`, `static_comparison`,
//! `fig2_blowup`, `fig3_optimization`, `fig4_updates`, `fig5_updates` and
//! `fig6_runtime` binaries and the Criterion benches. Every experiment is a
//! plain function returning a row structure, so it can be unit tested at small
//! scale and printed by the binaries at full scale.

#![warn(missing_docs)]

pub mod experiments;
pub mod options;

pub use experiments::*;
pub use options::Options;
