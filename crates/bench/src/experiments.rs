//! The experiment implementations behind every table and figure of Section V.

use std::time::{Duration, Instant};

use datasets::catalog::Dataset;
use datasets::gn::g_n;
use datasets::workload::{
    random_insert_delete_sequence, random_rename_sequence, WorkloadMix,
};
use grammar_repair::repair::{GrammarRePair, GrammarRePairConfig};
use grammar_repair::udc::{recompress_from_scratch, update_decompress_compress};
use grammar_repair::update::apply_update;
use sltgrammar::Grammar;
use treerepair::{TreeRePair, TreeRePairConfig};
use xmltree::XmlTree;

/// Measures the wall-clock time of a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// One row of Table III: document statistics and GrammarRePair compression.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset identity.
    pub dataset: Dataset,
    /// Edges of the (synthetic) document tree.
    pub edges: usize,
    /// Depth of the document tree.
    pub depth: usize,
    /// Edges of the grammar produced by GrammarRePair.
    pub c_edges: usize,
    /// Compression ratio in percent.
    pub ratio_percent: f64,
    /// Compression time.
    pub time: Duration,
}

/// Runs the Table III experiment for one dataset.
pub fn table3_row(dataset: Dataset, scale: f64) -> Table3Row {
    let xml = dataset.generate(scale);
    let edges = xml.edge_count();
    let depth = xml.depth();
    let ((_, stats), time) = timed(|| GrammarRePair::default().compress_xml(&xml));
    Table3Row {
        dataset,
        edges,
        depth,
        c_edges: stats.output_edges,
        ratio_percent: 100.0 * stats.output_edges as f64 / edges.max(1) as f64,
        time,
    }
}

/// One row of the static compression comparison (Section V-B text):
/// TreeRePair vs GrammarRePair applied to the tree vs GrammarRePair applied to
/// the TreeRePair grammar.
#[derive(Debug, Clone)]
pub struct StaticComparisonRow {
    /// Dataset identity.
    pub dataset: Dataset,
    /// Edges of the document tree.
    pub edges: usize,
    /// Grammar edges produced by TreeRePair.
    pub treerepair_edges: usize,
    /// TreeRePair compression time.
    pub treerepair_time: Duration,
    /// Grammar edges produced by GrammarRePair run on the tree.
    pub grammarrepair_tree_edges: usize,
    /// GrammarRePair-on-tree time.
    pub grammarrepair_tree_time: Duration,
    /// Grammar edges produced by GrammarRePair run on the TreeRePair grammar.
    pub grammarrepair_grammar_edges: usize,
    /// GrammarRePair-on-grammar time.
    pub grammarrepair_grammar_time: Duration,
}

/// Runs the static comparison for one dataset.
pub fn static_comparison_row(dataset: Dataset, scale: f64) -> StaticComparisonRow {
    let xml = dataset.generate(scale);
    let edges = xml.edge_count();
    let ((tr_grammar, tr_stats), tr_time) = timed(|| TreeRePair::default().compress_xml(&xml));
    let ((_, gr_tree_stats), gr_tree_time) =
        timed(|| GrammarRePair::default().compress_xml(&xml));
    let mut regram = tr_grammar.clone();
    let (gr_gram_stats, gr_gram_time) =
        timed(|| GrammarRePair::default().recompress(&mut regram));
    StaticComparisonRow {
        dataset,
        edges,
        treerepair_edges: tr_stats.output_edges,
        treerepair_time: tr_time,
        grammarrepair_tree_edges: gr_tree_stats.output_edges,
        grammarrepair_tree_time: gr_tree_time,
        grammarrepair_grammar_edges: gr_gram_stats.output_edges,
        grammarrepair_grammar_time: gr_gram_time,
    }
}

/// One bar of Figure 2: blow-up during recompression of a grammar.
#[derive(Debug, Clone)]
pub struct BlowupRow {
    /// Dataset identity.
    pub dataset: Dataset,
    /// Edges of the final grammar.
    pub final_edges: usize,
    /// Largest intermediate grammar observed.
    pub max_intermediate_edges: usize,
    /// Blow-up = max intermediate / final.
    pub blowup: f64,
    /// Final compression ratio (percent of the tree edges).
    pub final_ratio_percent: f64,
    /// Compression ratio of the largest intermediate grammar (percent).
    pub intermediate_ratio_percent: f64,
}

/// Runs the Figure 2 experiment for one dataset: compress the document with
/// TreeRePair, then recompress that grammar with GrammarRePair and record the
/// intermediate blow-up.
pub fn blowup_row(dataset: Dataset, scale: f64) -> BlowupRow {
    let xml = dataset.generate(scale);
    let edges = xml.edge_count();
    let (grammar, _) = TreeRePair::default().compress_xml(&xml);
    let mut g = grammar;
    let stats = GrammarRePair::default().recompress(&mut g);
    BlowupRow {
        dataset,
        final_edges: stats.output_edges,
        max_intermediate_edges: stats.max_intermediate_edges,
        blowup: stats.blowup(),
        final_ratio_percent: 100.0 * stats.output_edges as f64 / edges.max(1) as f64,
        intermediate_ratio_percent: 100.0 * stats.max_intermediate_edges as f64
            / edges.max(1) as f64,
    }
}

/// One point of Figure 3: the effect of the fragment-export optimization on the
/// `G_n` family.
#[derive(Debug, Clone)]
pub struct OptimizationPoint {
    /// Chain length parameter `n` of `G_n`.
    pub n: usize,
    /// Edges of the final grammar.
    pub final_edges: usize,
    /// Blow-up with the optimization enabled.
    pub optimized_blowup: f64,
    /// Runtime with the optimization enabled.
    pub optimized_time: Duration,
    /// Blow-up with the optimization disabled.
    pub unoptimized_blowup: f64,
    /// Runtime with the optimization disabled.
    pub unoptimized_time: Duration,
}

/// Runs the Figure 3 experiment for one `n`.
pub fn optimization_point(n: usize) -> OptimizationPoint {
    let run = |optimize: bool| {
        let mut g = g_n(n);
        let config = GrammarRePairConfig {
            optimize,
            ..GrammarRePairConfig::default()
        };
        let (stats, time) = timed(|| GrammarRePair::new(config).recompress(&mut g));
        (stats, time)
    };
    let (opt_stats, opt_time) = run(true);
    let (unopt_stats, unopt_time) = run(false);
    OptimizationPoint {
        n,
        final_edges: opt_stats.output_edges,
        optimized_blowup: opt_stats.blowup(),
        optimized_time: opt_time,
        unoptimized_blowup: unopt_stats.blowup(),
        unoptimized_time: unopt_time,
    }
}

/// One checkpoint of Figures 4 and 5: overheads relative to compression from
/// scratch, measured every `every` updates.
#[derive(Debug, Clone)]
pub struct UpdateCheckpoint {
    /// Number of updates applied so far.
    pub updates: usize,
    /// Grammar edges without any recompression (naive updates).
    pub naive_edges: usize,
    /// Grammar edges after recompressing with GrammarRePair at this checkpoint.
    pub grammarrepair_edges: usize,
    /// Grammar edges after update–decompress–compress from scratch.
    pub scratch_edges: usize,
}

impl UpdateCheckpoint {
    /// Overhead of naive updates: naive / from-scratch.
    pub fn naive_overhead(&self) -> f64 {
        self.naive_edges as f64 / self.scratch_edges.max(1) as f64
    }

    /// Overhead of GrammarRePair: recompressed / from-scratch.
    pub fn grammarrepair_overhead(&self) -> f64 {
        self.grammarrepair_edges as f64 / self.scratch_edges.max(1) as f64
    }
}

/// Result of the Figure 4/5 experiment for one dataset.
#[derive(Debug, Clone)]
pub struct UpdateExperiment {
    /// Dataset identity.
    pub dataset: Dataset,
    /// Edge count of the initial compressed grammar.
    pub initial_edges: usize,
    /// One entry per `every` updates.
    pub checkpoints: Vec<UpdateCheckpoint>,
}

/// Runs the Figure 4/5 experiment for one dataset: apply a random 90 % insert /
/// 10 % delete workload; every `every` updates compare (a) the naively updated
/// grammar, (b) the grammar recompressed by GrammarRePair and (c) compression
/// from scratch (udc).
pub fn update_experiment(
    dataset: Dataset,
    scale: f64,
    updates: usize,
    every: usize,
    seed: u64,
) -> UpdateExperiment {
    let xml = dataset.generate(scale);
    let ops = random_insert_delete_sequence(&xml, updates, seed, WorkloadMix::default());
    let (initial, _) = TreeRePair::default().compress_xml(&xml);

    // Three parallel states: the naive grammar (never recompressed), the
    // GrammarRePair-maintained grammar, and the op index.
    let mut naive = initial.clone();
    let mut maintained = initial.clone();
    let repair = GrammarRePair::default();
    let mut checkpoints = Vec::new();

    for (i, op) in ops.iter().enumerate() {
        apply_update(&mut naive, op).expect("workload operations are valid");
        apply_update(&mut maintained, op).expect("workload operations are valid");
        let done = i + 1;
        if done % every == 0 || done == ops.len() {
            repair.recompress(&mut maintained);
            // Compression from scratch of the *same* document state: decompress
            // the naive grammar and compress it with TreeRePair.
            let (scratch, _) = recompress_from_scratch(&naive, TreeRePairConfig::default())
                .expect("decompression stays within the configured limit");
            checkpoints.push(UpdateCheckpoint {
                updates: done,
                naive_edges: naive.edge_count(),
                grammarrepair_edges: maintained.edge_count(),
                scratch_edges: scratch.edge_count(),
            });
        }
    }

    UpdateExperiment {
        dataset,
        initial_edges: initial.edge_count(),
        checkpoints,
    }
}

/// One bar group of Figure 6: runtime of GrammarRePair recompression vs
/// update–decompress–compress after 300 random renames.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Dataset identity.
    pub dataset: Dataset,
    /// Edges of the (synthetic) document.
    pub edges: usize,
    /// Time for GrammarRePair recompression of the updated grammar.
    pub grammarrepair_time: Duration,
    /// Time for decompression + TreeRePair compression (udc with TreeRePair).
    pub udc_treerepair_time: Duration,
    /// Time for decompression + GrammarRePair-on-tree compression.
    pub udc_grammarrepair_time: Duration,
    /// Peak space proxy for GrammarRePair: largest intermediate grammar (edges).
    pub grammarrepair_peak_edges: usize,
    /// Peak space proxy for udc: decompressed tree size (edges).
    pub udc_peak_edges: usize,
    /// Resulting grammar edges (GrammarRePair).
    pub grammarrepair_edges: usize,
    /// Resulting grammar edges (udc).
    pub udc_edges: usize,
}

/// Runs the Figure 6 experiment for one dataset with `renames` random renames.
pub fn runtime_row(dataset: Dataset, scale: f64, renames: usize, seed: u64) -> RuntimeRow {
    let xml = dataset.generate(scale);
    let edges = xml.edge_count();
    let ops = random_rename_sequence(&xml, renames, seed);
    let (compressed, _) = TreeRePair::default().compress_xml(&xml);

    // Apply the updates once on the grammar (shared by both approaches).
    let mut updated = compressed.clone();
    for op in &ops {
        apply_update(&mut updated, op).expect("rename workload is valid");
    }

    // (a) GrammarRePair recompression of the updated grammar.
    let mut maintained = updated.clone();
    let (gr_stats, gr_time) = timed(|| GrammarRePair::default().recompress(&mut maintained));

    // (b) update-decompress-compress with TreeRePair (updates already applied,
    // so we measure decompress+compress on the updated grammar).
    let ((_, udc_stats), _total) = timed(|| {
        update_decompress_compress(&updated, &[], TreeRePairConfig::default())
            .expect("decompression stays within the configured limit")
    });
    let udc_tr_time = udc_stats.decompress_time + udc_stats.compress_time;

    // (c) decompress + GrammarRePair applied to the tree.
    let tree = sltgrammar::derive::val_limited(&updated, grammar_repair::udc::UDC_DECOMPRESSION_LIMIT)
        .expect("decompression stays within the configured limit");
    let symbols = updated.symbols.clone();
    let (gr_tree_stats, gr_tree_compress_time) = timed(|| {
        let mut g = Grammar::new(symbols, tree);
        GrammarRePair::default().recompress(&mut g)
    });
    let udc_gr_time = udc_stats.decompress_time + gr_tree_compress_time;
    let _ = gr_tree_stats;

    RuntimeRow {
        dataset,
        edges,
        grammarrepair_time: gr_time,
        udc_treerepair_time: udc_tr_time,
        udc_grammarrepair_time: udc_gr_time,
        grammarrepair_peak_edges: gr_stats.max_intermediate_edges,
        udc_peak_edges: udc_stats.decompressed_edges,
        grammarrepair_edges: gr_stats.output_edges,
        udc_edges: udc_stats.output_edges,
    }
}

/// Generates the document for a dataset at a given scale (helper shared by the
/// Criterion benches).
pub fn document(dataset: Dataset, scale: f64) -> XmlTree {
    dataset.generate(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_row_reports_consistent_numbers() {
        let row = table3_row(Dataset::ExiWeblog, 0.05);
        assert!(row.edges > 200);
        assert!(row.c_edges * 2 < row.edges);
        assert!(row.ratio_percent < 50.0);
        assert!((row.ratio_percent - 100.0 * row.c_edges as f64 / row.edges as f64).abs() < 1e-9);
    }

    #[test]
    fn blowup_is_at_least_one() {
        let row = blowup_row(Dataset::ExiWeblog, 0.05);
        assert!(row.blowup >= 1.0);
        assert!(row.final_edges <= row.max_intermediate_edges);
    }

    #[test]
    fn optimization_point_runs_both_modes() {
        let p = optimization_point(4);
        assert!(p.final_edges > 0);
        assert!(p.optimized_blowup >= 1.0);
        assert!(p.unoptimized_blowup >= 1.0);
    }

    #[test]
    fn update_experiment_produces_checkpoints_with_sane_overheads() {
        let exp = update_experiment(Dataset::ExiWeblog, 0.05, 60, 20, 7);
        assert_eq!(exp.checkpoints.len(), 3);
        for cp in &exp.checkpoints {
            assert!(cp.naive_overhead() >= 0.9);
            assert!(cp.grammarrepair_overhead() >= 0.2);
            // GrammarRePair never does worse than naive updates.
            assert!(cp.grammarrepair_edges <= cp.naive_edges);
        }
    }

    #[test]
    fn runtime_row_reports_all_three_methods() {
        let row = runtime_row(Dataset::ExiWeblog, 0.05, 10, 3);
        assert!(row.grammarrepair_time > Duration::ZERO);
        assert!(row.udc_treerepair_time > Duration::ZERO);
        assert!(row.udc_grammarrepair_time > Duration::ZERO);
        assert!(row.udc_peak_edges >= row.udc_edges);
    }
}
