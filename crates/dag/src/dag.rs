//! The minimal DAG of a binary XML tree, built by hash consing.

use std::collections::HashMap;

use sltgrammar::{NodeKind, RhsTree, SymbolTable, TermId};

/// Index of a node in a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DagIdx(pub u32);

impl DagIdx {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DagNode {
    label: TermId,
    children: Vec<DagIdx>,
}

/// Size statistics of a minimal DAG relative to the tree it represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagStats {
    /// Nodes of the input tree.
    pub tree_nodes: usize,
    /// Edges of the input tree.
    pub tree_edges: usize,
    /// Distinct DAG nodes.
    pub dag_nodes: usize,
    /// DAG edges (sum of out-degrees over distinct nodes).
    pub dag_edges: usize,
}

impl DagStats {
    /// `dag_edges / tree_edges` — the sharing ratio the paper's introduction
    /// quotes as ~10 % for typical XML.
    pub fn ratio(&self) -> f64 {
        if self.tree_edges == 0 {
            return 1.0;
        }
        self.dag_edges as f64 / self.tree_edges as f64
    }
}

/// The minimal DAG of a ranked labelled tree: every distinct subtree is stored
/// exactly once and identified by its [`DagIdx`].
#[derive(Debug, Clone)]
pub struct Dag {
    nodes: Vec<DagNode>,
    root: DagIdx,
    stats: DagStats,
}

impl Dag {
    /// Builds the minimal DAG of `tree` (a terminal-only [`RhsTree`], typically
    /// the binary encoding of an XML document). Runs in one bottom-up pass with
    /// hash consing of `(label, children)` signatures.
    pub fn build(tree: &RhsTree, _symbols: &SymbolTable) -> Self {
        let order = tree.preorder();
        let mut interned: HashMap<DagNode, DagIdx> = HashMap::new();
        let mut nodes: Vec<DagNode> = Vec::new();
        let mut dag_of: HashMap<sltgrammar::NodeId, DagIdx> = HashMap::with_capacity(order.len());

        for &n in order.iter().rev() {
            let label = match tree.kind(n) {
                NodeKind::Term(t) => t,
                other => panic!("Dag::build expects a terminal-only tree, found {other:?}"),
            };
            let children: Vec<DagIdx> = tree.children(n).iter().map(|c| dag_of[c]).collect();
            let key = DagNode { label, children };
            let idx = match interned.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = DagIdx(nodes.len() as u32);
                    nodes.push(key.clone());
                    interned.insert(key, idx);
                    idx
                }
            };
            dag_of.insert(n, idx);
        }
        let root = dag_of[&tree.root()];
        let dag_edges = nodes.iter().map(|n| n.children.len()).sum();
        let stats = DagStats {
            tree_nodes: order.len(),
            tree_edges: order.len().saturating_sub(1),
            dag_nodes: nodes.len(),
            dag_edges,
        };
        Dag { nodes, root, stats }
    }

    /// The root node.
    pub fn root(&self) -> DagIdx {
        self.root
    }

    /// Number of distinct DAG nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of DAG edges — the size measure compared against grammar edges.
    pub fn edge_count(&self) -> usize {
        self.stats.dag_edges
    }

    /// Size statistics relative to the input tree.
    pub fn stats(&self) -> DagStats {
        self.stats
    }

    /// Terminal label of a DAG node.
    pub fn label(&self, v: DagIdx) -> TermId {
        self.nodes[v.index()].label
    }

    /// Children of a DAG node.
    pub fn children(&self, v: DagIdx) -> &[DagIdx] {
        &self.nodes[v.index()].children
    }

    /// Number of references to each DAG node from other DAG nodes (the root has
    /// an implicit extra reference). Nodes with more than one reference are the
    /// shared subtrees.
    pub fn ref_counts(&self) -> Vec<usize> {
        let mut refs = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            for &c in &n.children {
                refs[c.index()] += 1;
            }
        }
        refs[self.root.index()] += 1;
        refs
    }

    /// Number of nodes of the tree this DAG unfolds to (may be exponentially
    /// larger than the DAG itself).
    pub fn derived_node_count(&self) -> u128 {
        // Bottom-up: children have larger indices? Not guaranteed — build order
        // is reverse preorder, so children were interned before parents and thus
        // have *smaller* indices. Process in index order.
        let mut sizes = vec![0u128; self.nodes.len()];
        for i in 0..self.nodes.len() {
            let sum: u128 = self.nodes[i]
                .children
                .iter()
                .map(|c| sizes[c.index()])
                .fold(0u128, |a, b| a.saturating_add(b));
            sizes[i] = sum.saturating_add(1);
        }
        sizes[self.root.index()]
    }

    /// Unfolds the DAG back into an explicit tree (for round-trip tests; only
    /// sensible when the derived tree is small).
    pub fn unfold(&self) -> RhsTree {
        let root_kind = NodeKind::Term(self.label(self.root));
        let mut out = RhsTree::singleton(root_kind);
        let out_root = out.root();
        // Depth-first expansion; children are attached in order.
        let mut stack: Vec<(DagIdx, sltgrammar::NodeId)> = vec![(self.root, out_root)];
        while let Some((v, at)) = stack.pop() {
            // Attach children in reverse so that pushing onto the stack keeps
            // document order when popped... children are attached immediately,
            // so order of attachment must be left-to-right.
            for &c in self.children(v) {
                let child_id = out.add_leaf(NodeKind::Term(self.label(c)));
                out.push_child(at, child_id);
                stack.push((c, child_id));
            }
        }
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| std::mem::size_of::<DagNode>() + n.children.len() * std::mem::size_of::<DagIdx>())
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::SymbolTable;
    use xmltree::binary::{to_binary, tree_fingerprint};
    use xmltree::parse::parse_xml;

    fn binary_of(doc: &str) -> (RhsTree, SymbolTable) {
        let xml = parse_xml(doc).unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        (bin, symbols)
    }

    #[test]
    fn figure1_tree_shares_repeated_subtrees() {
        // The paper's Figure 1 document: two identical <a><a/><a/></a> subtrees.
        let (bin, symbols) = binary_of("<f><a><a/><a/></a><a><a/><a/></a></f>");
        let dag = Dag::build(&bin, &symbols);
        assert_eq!(dag.stats().tree_nodes, 15);
        // Distinct subtrees of the binary tree: #, a(#,#), a(#,a(#,#)),
        // a(a(#,a(#,#)),#), a(a(#,a(#,#)),a(a(#,a(#,#)),#)), f(...,#) = 6.
        assert_eq!(dag.node_count(), 6);
        assert!(dag.edge_count() < bin.edge_count());
        assert_eq!(dag.derived_node_count(), 15);
    }

    #[test]
    fn fully_repetitive_list_compresses_dramatically() {
        let mut doc = String::from("<log>");
        for _ in 0..256 {
            doc.push_str("<e/>");
        }
        doc.push_str("</log>");
        let (bin, symbols) = binary_of(&doc);
        let dag = Dag::build(&bin, &symbols);
        // The binary tree is a right spine of identical <e/> suffixes: every
        // suffix of the list is a distinct subtree, so a DAG shares only the
        // null leaves — sharing is weak on lists (unlike grammar compression).
        assert!(dag.node_count() <= 258);
        assert_eq!(dag.derived_node_count(), bin.node_count() as u128);
    }

    #[test]
    fn nested_repetition_is_shared() {
        // Repeated identical record subtrees hanging from distinct positions.
        let mut doc = String::from("<db>");
        for _ in 0..50 {
            doc.push_str("<rec><k/><v><x/><y/></v></rec>");
        }
        doc.push_str("</db>");
        let (bin, symbols) = binary_of(&doc);
        let dag = Dag::build(&bin, &symbols);
        let stats = dag.stats();
        assert!(
            stats.ratio() < 0.75,
            "expected some sharing, got ratio {:.2}",
            stats.ratio()
        );
        // Shared nodes are referenced more than once.
        let refs = dag.ref_counts();
        assert!(refs.iter().any(|&r| r > 1));
    }

    #[test]
    fn unfold_reproduces_the_input_tree() {
        let (bin, symbols) = binary_of("<r><a><b/><c/></a><a><b/><c/></a><d/></r>");
        let dag = Dag::build(&bin, &symbols);
        let unfolded = dag.unfold();
        assert_eq!(
            tree_fingerprint(&unfolded, &symbols),
            tree_fingerprint(&bin, &symbols)
        );
    }

    #[test]
    fn distinct_trees_produce_distinct_roots() {
        // Share one symbol table so label ids are comparable across documents.
        let mut symbols = SymbolTable::new();
        let xml_a = parse_xml("<r><a/><b/></r>").unwrap();
        let xml_b = parse_xml("<r><b/><a/></r>").unwrap();
        let bin_a = to_binary(&xml_a, &mut symbols).unwrap();
        let bin_b = to_binary(&xml_b, &mut symbols).unwrap();
        let dag_a = Dag::build(&bin_a, &symbols);
        let dag_b = Dag::build(&bin_b, &symbols);
        assert_ne!(
            tree_fingerprint(&dag_a.unfold(), &symbols),
            tree_fingerprint(&dag_b.unfold(), &symbols)
        );
    }

    #[test]
    fn stats_ratio_handles_degenerate_trees() {
        let (bin, symbols) = binary_of("<only/>");
        let dag = Dag::build(&bin, &symbols);
        assert_eq!(dag.stats().tree_nodes, 3);
        assert!(dag.stats().ratio() <= 1.0);
        assert!(dag.size_bytes() > 0);
    }
}
