//! # dag-xml — minimal DAG compression of XML trees
//!
//! The subtree-sharing baseline of the ICDE 2016 paper's introduction: Buneman,
//! Grohe and Koch showed that typical XML document trees shrink to about 10 %
//! of their edges when every repeated *subtree* is represented only once — the
//! tree's minimal directed acyclic graph. SLT grammars (TreeRePair /
//! GrammarRePair) generalize this by also sharing repeated connected subgraphs
//! ("patterns with holes"), typically reaching ~3 % of the edges.
//!
//! This crate provides:
//!
//! * [`dag::Dag`] — the minimal DAG of a binary XML tree, built by hash
//!   consing in one bottom-up pass,
//! * [`to_grammar::dag_to_grammar`] — the equivalent SLCF grammar in which
//!   every shared DAG node becomes a rank-0 rule. This is the natural
//!   "DAG-compressed grammar" input on which the paper's GrammarRePair can be
//!   run directly (static compression of a grammar rather than of a tree).
//!
//! ## Example
//!
//! ```
//! use dag_xml::dag::Dag;
//! use xmltree::parse::parse_xml;
//! use sltgrammar::SymbolTable;
//! use xmltree::binary::to_binary;
//!
//! let doc = parse_xml("<f><a><a/><a/></a><a><a/><a/></a></f>").unwrap();
//! let mut symbols = SymbolTable::new();
//! let bin = to_binary(&doc, &mut symbols).unwrap();
//! let dag = Dag::build(&bin, &symbols);
//! // The two identical <a><a/><a/></a> subtrees are shared.
//! assert!(dag.edge_count() < bin.edge_count());
//! assert_eq!(dag.derived_node_count(), bin.node_count() as u128);
//! ```

#![warn(missing_docs)]

pub mod dag;
pub mod to_grammar;

pub use dag::{Dag, DagIdx, DagStats};
pub use to_grammar::dag_to_grammar;
