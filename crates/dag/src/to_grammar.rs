//! Conversion of a minimal DAG into an equivalent SLCF tree grammar.
//!
//! Every DAG node that is referenced more than once (and is not a bare leaf)
//! becomes a grammar rule of rank 0; all other nodes are expanded in place.
//! The resulting grammar derives exactly the original tree and is the natural
//! "DAG-compressed grammar" input on which GrammarRePair can be run directly,
//! as the paper does when it compares compression started from grammars rather
//! than from trees.

use std::collections::HashMap;

use sltgrammar::{Grammar, NodeKind, NtId, RhsTree, SymbolTable};

use crate::dag::{Dag, DagIdx};

/// Converts `dag` into an SLCF grammar over `symbols` with `val(G)` equal to
/// the tree the DAG unfolds to.
pub fn dag_to_grammar(dag: &Dag, symbols: &SymbolTable) -> Grammar {
    let refs = dag.ref_counts();
    // Shared nodes become rules; bare leaves are never worth a rule.
    let is_shared = |v: DagIdx| -> bool {
        v != dag.root() && refs[v.0 as usize] > 1 && !dag.children(v).is_empty()
    };

    // Phase 1: create the grammar with a placeholder start rule and one
    // placeholder rule per shared DAG node, recording their NtIds.
    let placeholder = |symbols: &SymbolTable| -> RhsTree {
        let null = symbols
            .get(sltgrammar::NULL_SYMBOL_NAME)
            .expect("binary XML alphabets always intern the null symbol");
        RhsTree::singleton(NodeKind::Term(null))
    };
    let mut grammar = Grammar::new(symbols.clone(), placeholder(symbols));
    let mut nt_of: HashMap<DagIdx, NtId> = HashMap::new();
    for i in 0..dag.node_count() {
        let v = DagIdx(i as u32);
        if is_shared(v) {
            let nt = grammar.add_rule_fresh("D", 0, placeholder(symbols));
            nt_of.insert(v, nt);
        }
    }

    // Phase 2: build the real right-hand sides. Children of a DAG node always
    // have smaller indices, so processing shared nodes in index order would
    // also work; expansion stops at shared children in either case.
    for (&v, &nt) in &nt_of {
        let rhs = expand(dag, v, &nt_of);
        grammar.rule_mut(nt).rhs = rhs;
    }
    let start = grammar.start();
    grammar.rule_mut(start).rhs = expand(dag, dag.root(), &nt_of);
    grammar
}

/// Expands the subgraph rooted at `v` into a right-hand-side tree, emitting a
/// rank-0 nonterminal reference whenever a *shared* child is reached.
fn expand(dag: &Dag, v: DagIdx, nt_of: &HashMap<DagIdx, NtId>) -> RhsTree {
    let mut rhs = RhsTree::singleton(NodeKind::Term(dag.label(v)));
    let root = rhs.root();
    // Work stack of (dag node, parent in the rhs); children are pushed in
    // reverse so siblings are attached in document order.
    let mut stack: Vec<(DagIdx, sltgrammar::NodeId)> = Vec::new();
    for &c in dag.children(v).iter().rev() {
        stack.push((c, root));
    }
    while let Some((d, parent)) = stack.pop() {
        if let Some(&nt) = nt_of.get(&d) {
            let node = rhs.add_leaf(NodeKind::Nt(nt));
            rhs.push_child(parent, node);
        } else {
            let node = rhs.add_leaf(NodeKind::Term(dag.label(d)));
            rhs.push_child(parent, node);
            for &c in dag.children(d).iter().rev() {
                stack.push((c, node));
            }
        }
    }
    rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use sltgrammar::fingerprint::fingerprint;
    use xmltree::binary::{to_binary, tree_fingerprint};
    use xmltree::parse::parse_xml;

    fn setup(doc: &str) -> (sltgrammar::RhsTree, SymbolTable) {
        let xml = parse_xml(doc).unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        (bin, symbols)
    }

    #[test]
    fn grammar_derives_the_original_tree() {
        let (bin, symbols) =
            setup("<db><rec><k/><v/></rec><rec><k/><v/></rec><rec><k/><v/></rec></db>");
        let dag = Dag::build(&bin, &symbols);
        let g = dag_to_grammar(&dag, &symbols);
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), tree_fingerprint(&bin, &symbols));
    }

    #[test]
    fn shared_subtrees_become_rules() {
        let (bin, symbols) = setup("<f><a><a/><a/></a><a><a/><a/></a></f>");
        let dag = Dag::build(&bin, &symbols);
        let g = dag_to_grammar(&dag, &symbols);
        g.validate().unwrap();
        // At least one rule beyond the start rule (the repeated <a> subtree).
        assert!(g.rule_count() >= 2, "expected sharing rules, got {}", g.rule_count());
        assert_eq!(fingerprint(&g), tree_fingerprint(&bin, &symbols));
    }

    #[test]
    fn grammar_size_does_not_exceed_dag_size_by_much() {
        let mut doc = String::from("<db>");
        for _ in 0..40 {
            doc.push_str("<rec><k/><v><x/><y/></v></rec>");
        }
        doc.push_str("</db>");
        let (bin, symbols) = setup(&doc);
        let dag = Dag::build(&bin, &symbols);
        let g = dag_to_grammar(&dag, &symbols);
        g.validate().unwrap();
        // Every DAG edge becomes at most one grammar edge; nonterminal
        // references add no children, so the sizes agree up to the edges of
        // bare leaf nodes that are duplicated instead of shared.
        assert!(g.edge_count() <= dag.edge_count() + dag.node_count());
        assert_eq!(fingerprint(&g), tree_fingerprint(&bin, &symbols));
    }

    #[test]
    fn document_without_repetition_yields_single_rule() {
        let (bin, symbols) = setup("<a><b><c/></b><d/></a>");
        let dag = Dag::build(&bin, &symbols);
        let g = dag_to_grammar(&dag, &symbols);
        g.validate().unwrap();
        // Nothing worth sharing except null leaves, which are inlined.
        assert_eq!(g.rule_count(), 1);
        assert_eq!(fingerprint(&g), tree_fingerprint(&bin, &symbols));
    }

    #[test]
    fn treerepair_compresses_lists_better_than_the_dag() {
        // Long sibling lists: the DAG cannot share suffixes of the binary right
        // spine, but RePair-style grammar compression shares them exponentially.
        let mut doc = String::from("<log>");
        for _ in 0..128 {
            doc.push_str("<e/>");
        }
        doc.push_str("</log>");
        let (bin, symbols) = setup(&doc);
        let dag = Dag::build(&bin, &symbols);
        let (g, _) = treerepair::TreeRePair::default().compress_binary(symbols.clone(), bin.clone());
        assert!(
            g.edge_count() * 2 < dag.edge_count(),
            "TreeRePair ({}) should beat the DAG ({}) on lists",
            g.edge_count(),
            dag.edge_count()
        );
    }
}
