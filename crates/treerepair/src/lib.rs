//! # treerepair — the baseline tree compressor
//!
//! A from-scratch Rust implementation of TreeRePair (Lohrey, Maneth, Mennicke,
//! *XML tree structure compression using RePair*, Inf. Syst. 2013), the
//! compressor the ICDE 2016 paper generalizes and compares against.
//!
//! TreeRePair repeatedly replaces a most frequent digram — an edge between two
//! adjacent labelled nodes — by a fresh pattern nonterminal, producing a
//! straight-line linear context-free tree grammar that derives exactly the
//! input tree. It serves two roles in this repository:
//!
//! 1. the *baseline compressor* of the evaluation (static compression, and the
//!    compression half of the update–decompress–compress baseline), and
//! 2. an independent oracle: its output sizes are cross-checked against
//!    GrammarRePair run on trivial grammars.
//!
//! ## Example
//!
//! ```
//! use treerepair::TreeRePair;
//! use xmltree::parse::parse_xml;
//!
//! let doc = parse_xml("<log><e><t/><m/></e><e><t/><m/></e><e><t/><m/></e></log>").unwrap();
//! let (grammar, stats) = TreeRePair::default().compress_xml(&doc);
//! assert!(stats.output_edges <= stats.input_edges);
//! assert!(grammar.validate().is_ok());
//! ```

#![warn(missing_docs)]

pub mod compressor;
pub mod digram;
pub mod occurrences;

pub use compressor::{CompressionStats, TreeRePair, TreeRePairConfig};
pub use digram::Digram;
pub use occurrences::OccTable;
