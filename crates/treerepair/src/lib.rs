//! # treerepair — the baseline tree compressor
//!
//! A from-scratch Rust implementation of TreeRePair (Lohrey, Maneth, Mennicke,
//! *XML tree structure compression using RePair*, Inf. Syst. 2013), the
//! compressor the ICDE 2016 paper generalizes and compares against.
//!
//! TreeRePair repeatedly replaces a most frequent digram — an edge between two
//! adjacent labelled nodes — by a fresh pattern nonterminal, producing a
//! straight-line linear context-free tree grammar that derives exactly the
//! input tree. It serves two roles in this repository:
//!
//! 1. the *baseline compressor* of the evaluation (static compression, and the
//!    compression half of the update–decompress–compress baseline), and
//! 2. an independent oracle: its output sizes are cross-checked against
//!    GrammarRePair run on trivial grammars.
//!
//! ## Digram selection: the frequency-bucket queue
//!
//! The compression loop's hot query is "which digram is most frequent right
//! now?". A naive implementation rescans the whole occurrence table every
//! round — O(#digrams) per round, quadratic over a run, and it re-derives each
//! candidate's pattern rank on every scan. Instead, [`OccTable`] embeds a
//! [`queue::FrequencyBucketQueue`] (Larsson & Moffat's RePair queue, adapted
//! to tree digrams) that it keeps consistent *incrementally*:
//!
//! * **Bucket invariant** — a digram with `c` recorded occurrences sits in
//!   bucket `c`. Every [`OccTable::add`] / [`OccTable::remove`] moves the
//!   digram between adjacent buckets: an O(1) expected hash lookup plus an
//!   O(log b) insertion into the destination bucket (buckets are ordered by
//!   [`Digram::sort_key`], which is what keeps tie-breaking deterministic).
//! * **Pop invariant** — [`OccTable::select_best`] returns the digram a full
//!   table scan would return: maximal count, ties broken by smallest sort
//!   key. The top-bucket cursor only rises when a count rises, by one step
//!   per increment, so the downward walk is amortized O(1) per round.
//! * **Eligibility cache** — a digram's pattern rank never changes (terminal
//!   ranks are fixed by the symbol table; a pattern rule's rank is fixed at
//!   creation), so a digram rejected for exceeding `k_in` is excluded
//!   permanently. The rank of each digram is computed at most once per run,
//!   instead of once per candidate per round.
//! * **Ordered occurrence sets** — per-digram child sets are `BTreeSet`s, so
//!   collecting a round's replacement targets is an ordered copy into a
//!   reusable buffer, never an allocate-and-sort.
//!
//! [`compressor::DigramSelector::NaiveScan`] switches the loop back to the
//! full rescan; both selectors produce byte-identical grammars (asserted by
//! unit tests here and the `selector_equivalence` property suite at the
//! workspace root), so the queue is a pure performance change.
//!
//! ## Example
//!
//! ```
//! use treerepair::TreeRePair;
//! use xmltree::parse::parse_xml;
//!
//! let doc = parse_xml("<log><e><t/><m/></e><e><t/><m/></e><e><t/><m/></e></log>").unwrap();
//! let (grammar, stats) = TreeRePair::default().compress_xml(&doc);
//! assert!(stats.output_edges <= stats.input_edges);
//! assert!(grammar.validate().is_ok());
//! ```

#![warn(missing_docs)]

pub mod compressor;
pub mod digram;
pub mod occurrences;
pub mod queue;

pub use compressor::{CompressionStats, DigramSelector, TreeRePair, TreeRePairConfig};
pub use digram::Digram;
pub use occurrences::OccTable;
pub use queue::FrequencyBucketQueue;
