//! Frequency-bucket priority queue over digrams (Larsson–Moffat style,
//! adapted to tree digrams).
//!
//! RePair repeatedly needs "the most frequent digram, ties broken by
//! [`Digram::sort_key`]". A linear scan of the occurrence table per round makes
//! the compression loop quadratic in the number of distinct digrams; this
//! queue maintains the answer incrementally instead:
//!
//! * digrams are kept in *buckets* indexed by their current occurrence count;
//! * [`FrequencyBucketQueue::update`] moves a digram between buckets when its
//!   count changes — an O(1) expected bucket lookup plus an O(log b) ordered
//!   insertion into the destination bucket of size `b` (the ordering inside a
//!   bucket is what keeps tie-breaking deterministic and the output grammar
//!   byte-identical to a naive full scan);
//! * [`FrequencyBucketQueue::pop_best`] walks down from the highest non-empty
//!   bucket. The walk is amortized O(1): the top-bucket cursor only rises when
//!   an `update` raises it, by at most one step per count increment, so total
//!   walking is bounded by total updates. Digrams rejected by the caller's
//!   eligibility test (pattern rank above `k_in`) are removed *permanently* —
//!   a digram's pattern rank never changes, so each digram is tested at most
//!   once over the whole run.
//!
//! Counts are `u64` so the same queue serves both the tree compressor (counts
//! bounded by the node count) and GrammarRePair's usage-weighted occurrence
//! counts (which can saturate `u64` on deeply nested grammars). Buckets for
//! small counts are array-indexed; the rare astronomical counts spill into an
//! ordered map.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use sltgrammar::FxHashSet;

use crate::digram::Digram;

/// The deterministic tie-breaking key, see [`Digram::sort_key`].
type SortKey = (u8, u32, usize, u8, u32);

/// Counts below this bound use array-indexed buckets; larger counts (only
/// reachable through usage-weighted grammar occurrences) use the spill map.
const LOW_BUCKETS: usize = 1 << 16;

/// An ordered bucket: all digrams currently holding one particular count,
/// ordered by sort key. `sort_key` is injective, so the key fully identifies
/// the digram and the map never collides.
type Bucket = BTreeMap<SortKey, Digram>;

/// Incrementally maintained max-frequency digram queue with deterministic
/// tie-breaking. See the module docs for the complexity contract.
#[derive(Debug, Default, Clone)]
pub struct FrequencyBucketQueue {
    /// `low[c]` holds the digrams whose current count is `c`, for
    /// `c < LOW_BUCKETS`. Grown on demand; empty buckets are cheap
    /// (`BTreeMap::new` does not allocate).
    low: Vec<Bucket>,
    /// Spill buckets for counts `>= LOW_BUCKETS`, keyed by count.
    high: BTreeMap<u64, Bucket>,
    /// Upper bound on the index of the highest non-empty low bucket.
    max_low: usize,
    /// Digrams permanently removed from selection (pattern rank exceeded the
    /// configured maximum, or the caller banned them via
    /// [`FrequencyBucketQueue::exclude`]). Rank is immutable per digram, so
    /// exclusion is final; `update` keeps these out of the buckets.
    excluded: FxHashSet<Digram>,
}

impl FrequencyBucketQueue {
    /// An empty queue.
    pub fn new() -> Self {
        FrequencyBucketQueue::default()
    }

    /// Moves `digram` from the bucket for `old_count` to the bucket for
    /// `new_count`. A count of 0 means "not queued": `update(d, 0, c)` enqueues
    /// and `update(d, c, 0)` dequeues. Counts equal to each other are a no-op,
    /// as are updates for permanently excluded digrams.
    pub fn update(&mut self, digram: &Digram, old_count: u64, new_count: u64) {
        if old_count == new_count || self.excluded.contains(digram) {
            return;
        }
        let key = digram.sort_key();
        if old_count > 0 {
            self.bucket_mut(old_count).remove(&key);
        }
        if new_count > 0 {
            self.bucket_mut(new_count).insert(key, *digram);
            if new_count < LOW_BUCKETS as u64 {
                self.max_low = self.max_low.max(new_count as usize);
            }
        }
    }

    /// Enqueues a digram with its initial count (used for bulk builds; no-op
    /// for a zero count).
    pub fn insert(&mut self, digram: Digram, count: u64) {
        self.update(&digram, 0, count);
    }

    /// Permanently bans a digram from selection, dropping it from whichever
    /// bucket currently holds it (`current` is its queued count; pass 0 if it
    /// is not queued). Used by GrammarRePair for digrams whose replacement
    /// produced nothing: every future [`FrequencyBucketQueue::update`] for the
    /// digram becomes a no-op, exactly like a rank-based exclusion.
    pub fn exclude(&mut self, digram: &Digram, current: u64) {
        self.update(digram, current, 0);
        self.excluded.insert(*digram);
    }

    /// Whether a digram has been permanently excluded (by an eligibility
    /// rejection in [`FrequencyBucketQueue::pop_best`] or by
    /// [`FrequencyBucketQueue::exclude`]).
    pub fn is_excluded(&self, digram: &Digram) -> bool {
        self.excluded.contains(digram)
    }

    /// Returns the digram with the highest count `>= min_count`, breaking count
    /// ties by smallest sort key, considering only digrams accepted by
    /// `eligible`. Rejected digrams are removed permanently (their pattern rank
    /// can never shrink). The returned digram stays queued; it is removed when
    /// its count drops to zero via [`FrequencyBucketQueue::update`].
    pub fn pop_best(
        &mut self,
        min_count: u64,
        mut eligible: impl FnMut(&Digram) -> bool,
    ) -> Option<Digram> {
        // Spill buckets first: they always outrank the array-indexed ones.
        while let Some((&count, bucket)) = self.high.iter_mut().next_back() {
            match Self::first_eligible(bucket, &mut eligible, &mut self.excluded) {
                Some(d) if count >= min_count => return Some(d),
                Some(_) => break, // counts only get smaller from here on
                None => {
                    self.high.remove(&count);
                }
            }
        }
        if (self.max_low as u64) < min_count {
            return None;
        }
        while self.max_low > 0 {
            let cursor = self.max_low;
            let bucket = &mut self.low[cursor];
            match Self::first_eligible(bucket, &mut eligible, &mut self.excluded) {
                Some(d) => {
                    return if cursor as u64 >= min_count {
                        Some(d)
                    } else {
                        None
                    };
                }
                None => {
                    self.max_low = cursor - 1;
                    if (self.max_low as u64) < min_count {
                        return None;
                    }
                }
            }
        }
        None
    }

    /// First eligible digram of one bucket in sort-key order; drains ineligible
    /// entries into the permanent exclusion set.
    fn first_eligible(
        bucket: &mut Bucket,
        eligible: &mut impl FnMut(&Digram) -> bool,
        excluded: &mut FxHashSet<Digram>,
    ) -> Option<Digram> {
        while let Some((&key, &digram)) = bucket.iter().next() {
            if eligible(&digram) {
                return Some(digram);
            }
            bucket.remove(&key);
            excluded.insert(digram);
        }
        None
    }

    /// Number of queued (non-excluded) digrams. O(#buckets in use).
    pub fn len(&self) -> usize {
        self.low.iter().map(|b| b.len()).sum::<usize>()
            + self.high.values().map(|b| b.len()).sum::<usize>()
    }

    /// Whether no digram is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn bucket_mut(&mut self, count: u64) -> &mut Bucket {
        if count < LOW_BUCKETS as u64 {
            let index = count as usize;
            if index >= self.low.len() {
                self.low.resize_with(index + 1, Bucket::new);
            }
            &mut self.low[index]
        } else {
            match self.high.entry(count) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => e.insert(Bucket::new()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::NodeKind;
    use sltgrammar::TermId;

    fn digram(parent: u32, index: usize, child: u32) -> Digram {
        Digram {
            parent: NodeKind::Term(TermId(parent)),
            child_index: index,
            child: NodeKind::Term(TermId(child)),
        }
    }

    #[test]
    fn pops_highest_count_with_sort_key_ties() {
        let mut q = FrequencyBucketQueue::new();
        q.insert(digram(5, 0, 1), 3);
        q.insert(digram(2, 0, 1), 3);
        q.insert(digram(1, 0, 1), 2);
        // Same count: the smaller sort key (parent 2) wins.
        assert_eq!(q.pop_best(2, |_| true), Some(digram(2, 0, 1)));
        // Popping does not dequeue; dropping the count does.
        q.update(&digram(2, 0, 1), 3, 0);
        assert_eq!(q.pop_best(2, |_| true), Some(digram(5, 0, 1)));
        q.update(&digram(5, 0, 1), 3, 0);
        assert_eq!(q.pop_best(2, |_| true), Some(digram(1, 0, 1)));
        assert_eq!(q.pop_best(3, |_| true), None);
    }

    #[test]
    fn min_count_filters_low_buckets() {
        let mut q = FrequencyBucketQueue::new();
        q.insert(digram(1, 0, 2), 1);
        assert_eq!(q.pop_best(2, |_| true), None);
        q.update(&digram(1, 0, 2), 1, 2);
        assert_eq!(q.pop_best(2, |_| true), Some(digram(1, 0, 2)));
    }

    #[test]
    fn ineligible_digrams_are_excluded_permanently() {
        let mut q = FrequencyBucketQueue::new();
        let fat = digram(0, 0, 0);
        let thin = digram(3, 0, 3);
        q.insert(fat, 9);
        q.insert(thin, 4);
        let mut tested = Vec::new();
        let selected = q.pop_best(2, |d| {
            tested.push(*d);
            *d != fat
        });
        assert_eq!(selected, Some(thin));
        assert_eq!(tested, vec![fat, thin]);
        // The excluded digram never reappears, even if its count changes.
        q.update(&fat, 9, 20);
        assert_eq!(q.pop_best(2, |_| true), Some(thin));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn spill_buckets_handle_huge_counts() {
        let mut q = FrequencyBucketQueue::new();
        q.insert(digram(1, 0, 1), u64::MAX);
        q.insert(digram(2, 0, 2), 1 << 40);
        q.insert(digram(3, 0, 3), 7);
        assert_eq!(q.pop_best(2, |_| true), Some(digram(1, 0, 1)));
        q.update(&digram(1, 0, 1), u64::MAX, 0);
        assert_eq!(q.pop_best(2, |_| true), Some(digram(2, 0, 2)));
        // Falling out of the spill zone lands back in the array buckets,
        // where the count-7 digram now outranks the demoted one.
        q.update(&digram(2, 0, 2), 1 << 40, 3);
        assert_eq!(q.pop_best(2, |_| true), Some(digram(3, 0, 3)));
        q.update(&digram(3, 0, 3), 7, 0);
        assert_eq!(q.pop_best(2, |_| true), Some(digram(2, 0, 2)));
    }

    #[test]
    fn excluded_digrams_ignore_all_future_updates() {
        let mut q = FrequencyBucketQueue::new();
        let banned = digram(1, 0, 1);
        let other = digram(2, 0, 2);
        q.insert(banned, 5);
        q.insert(other, 3);
        q.exclude(&banned, 5);
        assert!(q.is_excluded(&banned));
        assert_eq!(q.pop_best(2, |_| true), Some(other));
        // Updates for the banned digram are no-ops forever.
        q.update(&banned, 0, 100);
        assert_eq!(q.pop_best(2, |_| true), Some(other));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counts_can_rise_and_fall_repeatedly() {
        let mut q = FrequencyBucketQueue::new();
        let d = digram(1, 1, 2);
        q.insert(d, 1);
        for c in 2..50u64 {
            q.update(&d, c - 1, c);
        }
        assert_eq!(q.pop_best(2, |_| true), Some(d));
        for c in (25..50u64).rev() {
            q.update(&d, c, c - 1);
        }
        assert_eq!(q.pop_best(2, |_| true), Some(d));
        assert_eq!(q.pop_best(25, |_| true), None);
    }
}
