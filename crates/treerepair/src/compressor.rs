//! The TreeRePair compression loop (paper Section IV, tree case; Lohrey,
//! Maneth, Mennicke 2013).
//!
//! Starting from a trivial grammar whose start rule is the input tree, the
//! compressor repeatedly selects a most frequent *appropriate* digram, replaces
//! every recorded occurrence by a fresh pattern nonterminal, incrementally
//! updates the neighbouring digram occurrences, and finally prunes unproductive
//! rules.

use sltgrammar::pruning::{prune, PruneStats};
use sltgrammar::{Grammar, NodeId, NodeKind, NtId, RhsTree, SymbolTable};
use xmltree::binary::to_binary;
use xmltree::XmlTree;

use crate::digram::{pattern_rhs, Digram};
use crate::occurrences::OccTable;

/// How the compression loop selects the next digram to replace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DigramSelector {
    /// Pop the incrementally maintained frequency-bucket queue (O(1)
    /// amortized per round). The default.
    #[default]
    FrequencyQueue,
    /// Rescan the whole occurrence table every round (the historical
    /// quadratic behavior). Kept as an oracle: both selectors produce
    /// byte-identical grammars, which the equivalence tests assert.
    NaiveScan,
}

/// Configuration of the RePair compression loop.
#[derive(Debug, Clone, Copy)]
pub struct TreeRePairConfig {
    /// The paper's `k_in`: maximal rank of a digram pattern rule.
    pub max_rank: usize,
    /// Minimal number of occurrences for a digram to be replaced (the paper
    /// requires "more than one").
    pub min_occurrences: usize,
    /// Whether to run the final pruning phase.
    pub prune: bool,
    /// Digram selection strategy; see [`DigramSelector`].
    pub selector: DigramSelector,
}

impl Default for TreeRePairConfig {
    fn default() -> Self {
        TreeRePairConfig {
            max_rank: 4,
            min_occurrences: 2,
            prune: true,
            selector: DigramSelector::FrequencyQueue,
        }
    }
}

/// Statistics collected over one compression run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressionStats {
    /// Number of digram replacement rounds (= pattern rules introduced before pruning).
    pub rounds: usize,
    /// Edge count of the input (the start rule before compression).
    pub input_edges: usize,
    /// Edge count of the final grammar.
    pub output_edges: usize,
    /// Largest grammar edge count observed after any replacement round.
    pub max_intermediate_edges: usize,
    /// Result of the pruning phase.
    pub pruned: PruneStats,
}

impl CompressionStats {
    /// Compression ratio: final grammar edges / input edges.
    pub fn ratio(&self) -> f64 {
        if self.input_edges == 0 {
            return 1.0;
        }
        self.output_edges as f64 / self.input_edges as f64
    }

    /// Blow-up: max intermediate grammar size / final grammar size (Figure 2's measure).
    pub fn blowup(&self) -> f64 {
        if self.output_edges == 0 {
            return 1.0;
        }
        self.max_intermediate_edges as f64 / self.output_edges as f64
    }
}

/// The TreeRePair compressor.
#[derive(Debug, Clone, Default)]
pub struct TreeRePair {
    /// Loop configuration.
    pub config: TreeRePairConfig,
}

impl TreeRePair {
    /// Creates a compressor with the given configuration.
    pub fn new(config: TreeRePairConfig) -> Self {
        TreeRePair { config }
    }

    /// Compresses a binary tree (terminals only) into an SLCF grammar.
    pub fn compress_binary(
        &self,
        symbols: SymbolTable,
        bin: RhsTree,
    ) -> (Grammar, CompressionStats) {
        let mut grammar = Grammar::new(symbols, bin);
        let stats = self.compress_start_rule(&mut grammar);
        (grammar, stats)
    }

    /// Parses, binarizes and compresses an XML document tree.
    pub fn compress_xml(&self, xml: &XmlTree) -> (Grammar, CompressionStats) {
        let mut symbols = SymbolTable::new();
        let bin = to_binary(xml, &mut symbols).expect("document labels are valid symbols");
        self.compress_binary(symbols, bin)
    }

    /// Runs the RePair loop on the start rule of an existing grammar whose start
    /// rule is a plain tree (terminals only). Used internally and by the
    /// update-decompress-compress baseline.
    pub fn compress_start_rule(&self, grammar: &mut Grammar) -> CompressionStats {
        let start = grammar.start();
        let input_edges = grammar.edge_count();
        let mut stats = CompressionStats {
            input_edges,
            max_intermediate_edges: input_edges,
            ..CompressionStats::default()
        };

        let mut occ = OccTable::scan(&grammar.rule(start).rhs);
        // Replacement targets of the round, reused across rounds (filled from
        // the ordered occurrence set — no per-round allocation or sort).
        let mut targets: Vec<NodeId> = Vec::new();
        // Live grammar edge count, maintained arithmetically: recomputing it
        // via `Grammar::edge_count` walks every rule and would put an O(n)
        // traversal back into each round.
        let mut live_edges = input_edges;
        loop {
            let selected = match self.config.selector {
                DigramSelector::FrequencyQueue => occ.select_best(
                    self.config.min_occurrences,
                    // Pattern ranks are immutable per digram, so the queue
                    // caches this verdict: the rank of any digram is computed
                    // at most once over the whole run.
                    |d| d.pattern_rank(grammar) <= self.config.max_rank,
                ),
                DigramSelector::NaiveScan => self.select_naive(&occ, grammar),
            };
            let Some(digram) = selected else {
                break;
            };
            let pattern = pattern_rhs(grammar, &digram);
            let rank = digram.pattern_rank(grammar);
            let x = grammar.add_rule_fresh("X", rank, pattern);
            occ.collect_children_into(&digram, &mut targets);
            let mut replaced = 0usize;
            {
                let rhs = &mut grammar.rule_mut(start).rhs;
                for &w in &targets {
                    if replace_occurrence(rhs, &mut occ, &digram, x, w) {
                        replaced += 1;
                    }
                }
            }
            occ.remove_digram(&digram);
            stats.rounds += 1;
            // The pattern rule t_X has rank+1 edges; each splice fuses two
            // nodes into one, removing exactly one edge from the start rule.
            live_edges += rank + 1;
            live_edges -= replaced;
            debug_assert_eq!(live_edges, grammar.edge_count());
            stats.max_intermediate_edges = stats.max_intermediate_edges.max(live_edges);
        }

        if self.config.prune {
            stats.pruned = prune(grammar);
        }
        grammar.gc();
        grammar.compact();
        stats.output_edges = grammar.edge_count();
        stats.max_intermediate_edges = stats.max_intermediate_edges.max(stats.output_edges);
        stats
    }

    /// Selects a most frequent appropriate digram by scanning the whole
    /// occurrence table (deterministic tie-breaking). Reference implementation
    /// for [`DigramSelector::NaiveScan`]; the queue-based selector must agree
    /// with it on every round.
    fn select_naive(&self, occ: &OccTable, grammar: &Grammar) -> Option<Digram> {
        let mut best: Option<(usize, Digram)> = None;
        for (digram, occurrences) in occ.iter() {
            let count = occurrences.count();
            if count < self.config.min_occurrences {
                continue;
            }
            if digram.pattern_rank(grammar) > self.config.max_rank {
                continue;
            }
            match &best {
                None => best = Some((count, *digram)),
                Some((best_count, best_digram)) => {
                    if count > *best_count
                        || (count == *best_count && digram.sort_key() < best_digram.sort_key())
                    {
                        best = Some((count, *digram));
                    }
                }
            }
        }
        best.map(|(_, d)| d)
    }
}

/// Replaces one occurrence of `digram` (identified by its child node `w`) with a
/// reference to the pattern rule `x`, updating neighbouring occurrences.
/// Returns whether the occurrence was still intact and actually replaced.
fn replace_occurrence(
    rhs: &mut RhsTree,
    occ: &mut OccTable,
    digram: &Digram,
    x: NtId,
    w: NodeId,
) -> bool {
    let Some(v) = rhs.parent(w) else { return false };
    // Defensive re-validation: the occurrence must still be intact.
    if rhs.kind(v) != digram.parent
        || rhs.kind(w) != digram.child
        || rhs.child_index(w) != Some(digram.child_index)
    {
        return false;
    }
    let i = digram.child_index;

    // Remove neighbouring occurrences that mention v or w.
    if let Some(p) = rhs.parent(v) {
        let j = rhs.child_index(v).expect("v has a parent");
        occ.remove(
            &Digram {
                parent: rhs.kind(p),
                child_index: j,
                child: rhs.kind(v),
            },
            p,
            v,
        );
    }
    let v_children = rhs.children(v).to_vec();
    for (k, &c) in v_children.iter().enumerate() {
        if k == i {
            continue;
        }
        occ.remove(
            &Digram {
                parent: rhs.kind(v),
                child_index: k,
                child: rhs.kind(c),
            },
            v,
            c,
        );
    }
    let w_children = rhs.children(w).to_vec();
    for (k, &c) in w_children.iter().enumerate() {
        occ.remove(
            &Digram {
                parent: rhs.kind(w),
                child_index: k,
                child: rhs.kind(c),
            },
            w,
            c,
        );
    }

    // Structural replacement: X(v.1, …, v.(i−1), w.1, …, w.n, v.(i+1), …, v.m).
    for &c in &v_children {
        rhs.detach(c);
    }
    for &c in &w_children {
        rhs.detach(c);
    }
    let mut new_children = Vec::with_capacity(v_children.len() + w_children.len() - 1);
    new_children.extend_from_slice(&v_children[..i]);
    new_children.extend_from_slice(&w_children);
    new_children.extend_from_slice(&v_children[i + 1..]);
    let x_node = rhs.add_node(NodeKind::Nt(x), new_children);
    rhs.replace_subtree(v, x_node);

    // Add the new occurrences around the fresh node.
    if let Some(p) = rhs.parent(x_node) {
        let j = rhs.child_index(x_node).expect("x_node has a parent");
        occ.add(
            Digram {
                parent: rhs.kind(p),
                child_index: j,
                child: NodeKind::Nt(x),
            },
            p,
            x_node,
        );
    }
    let x_children = rhs.children(x_node).to_vec();
    for (k, &c) in x_children.iter().enumerate() {
        occ.add(
            Digram {
                parent: NodeKind::Nt(x),
                child_index: k,
                child: rhs.kind(c),
            },
            x_node,
            c,
        );
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::fingerprint::fingerprint;
    use sltgrammar::text::parse_grammar;
    use xmltree::binary::{binary_to_grammar, tree_fingerprint};
    use xmltree::parse::parse_xml;

    fn compress_doc(doc: &str) -> (Grammar, CompressionStats, sltgrammar::fingerprint::Fingerprint) {
        let xml = parse_xml(doc).unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let fp = tree_fingerprint(&bin, &symbols);
        let (g, stats) = TreeRePair::default().compress_binary(symbols, bin);
        (g, stats, fp)
    }

    #[test]
    fn compression_preserves_the_derived_tree() {
        let (g, _, fp) = compress_doc(
            "<r><rec><a/><b/><c/></rec><rec><a/><b/><c/></rec><rec><a/><b/><c/></rec>\
             <rec><a/><b/><c/></rec><rec><a/><b/><c/></rec></r>",
        );
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), fp);
    }

    #[test]
    fn repetitive_documents_compress_well() {
        // 64 identical records: the grammar must be much smaller than the tree.
        let mut doc = String::from("<log>");
        for _ in 0..64 {
            doc.push_str("<entry><ts/><host/><msg/></entry>");
        }
        doc.push_str("</log>");
        let (g, stats, fp) = compress_doc(&doc);
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), fp);
        assert!(stats.output_edges * 4 < stats.input_edges,
            "expected at least 4x compression, got {} -> {}", stats.input_edges, stats.output_edges);
        assert!(stats.rounds > 0);
    }

    #[test]
    fn incompressible_documents_stay_roughly_the_same_size() {
        // A path of distinct labels has no repeated digram at all.
        let mut doc = String::new();
        for i in 0..40 {
            doc.push_str(&format!("<n{i}>"));
        }
        for i in (0..40).rev() {
            doc.push_str(&format!("</n{i}>"));
        }
        let (g, stats, fp) = compress_doc(&doc);
        assert_eq!(fingerprint(&g), fp);
        // Only null-child digrams can be shared; the grammar stays within a
        // small factor of the input.
        assert!(stats.output_edges as f64 > 0.5 * stats.input_edges as f64);
    }

    #[test]
    fn string_example_from_the_introduction() {
        // w = ababababa as a monadic tree: RePair yields a grammar of size <= 7
        // (the paper's example grammar has size 7; ours counts edges of the
        // equivalent monadic-tree encoding, so we only check it shrinks).
        let g0 = parse_grammar(
            "S -> a(b(a(b(a(b(a(b(a(#)))))))))",
        )
        .unwrap();
        let before = fingerprint(&g0);
        let start_rhs = g0.rule(g0.start()).rhs.clone();
        let (g, stats) = TreeRePair::default().compress_binary(g0.symbols.clone(), start_rhs);
        assert_eq!(fingerprint(&g), before);
        assert!(stats.output_edges < stats.input_edges);
        assert!(g.rule_count() >= 2);
    }

    #[test]
    fn max_rank_limits_pattern_arity() {
        let xml = parse_xml("<r><a><b/><b/></a><a><b/><b/></a></r>").unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let config = TreeRePairConfig {
            max_rank: 2,
            ..TreeRePairConfig::default()
        };
        let (g, _) = TreeRePair::new(config).compress_binary(symbols, bin);
        for nt in g.nonterminals() {
            assert!(g.rule(nt).rank <= 2, "rule {} exceeds max rank", g.rule(nt).name);
        }
    }

    #[test]
    fn stats_report_consistent_sizes() {
        let (g, stats, _) = compress_doc("<r><x><y/></x><x><y/></x><x><y/></x></r>");
        assert_eq!(stats.output_edges, g.edge_count());
        assert!(stats.max_intermediate_edges >= stats.output_edges);
        assert!(stats.ratio() <= 1.0 + f64::EPSILON);
        assert!(stats.blowup() >= 1.0);
    }

    #[test]
    fn pruning_can_be_disabled() {
        let xml = parse_xml("<r><x><y/></x><x><y/></x></r>").unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let fp = tree_fingerprint(&bin, &symbols);
        let config = TreeRePairConfig {
            prune: false,
            ..TreeRePairConfig::default()
        };
        let (g, _) = TreeRePair::new(config).compress_binary(symbols, bin);
        assert_eq!(fingerprint(&g), fp);
    }

    #[test]
    fn trivial_grammar_roundtrip_matches_input() {
        // Compress then decompress: val(G) equals the original binary tree.
        let xml = parse_xml("<r><p><q/><q/></p><p><q/><q/></p></r>").unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let reference = binary_to_grammar(symbols.clone(), bin.clone());
        let (g, _) = TreeRePair::default().compress_binary(symbols, bin);
        let val = sltgrammar::derive::val(&g).unwrap();
        let val_ref = sltgrammar::derive::val(&reference).unwrap();
        assert_eq!(val.node_count(), val_ref.node_count());
    }
}
