//! Digrams over ranked trees.
//!
//! A digram `(a, i, b)` denotes an edge from an `a`-labelled node to its `i`-th
//! child labelled `b` (paper Section II). During compression, previously
//! introduced pattern nonterminals behave exactly like terminals, so digram
//! components are [`NodeKind`] values (terminals or nonterminal references —
//! parameters never participate in digrams).

use sltgrammar::{Grammar, NodeKind};

/// A tree digram `(parent label, child index, child label)`. The child index is
/// 0-based internally (the paper writes 1-based indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digram {
    /// Label of the parent node.
    pub parent: NodeKind,
    /// 0-based index of the child edge.
    pub child_index: usize,
    /// Label of the child node.
    pub child: NodeKind,
}

impl Digram {
    /// Whether parent and child carry the same label (`(b, i, b)` digrams need
    /// overlap handling).
    pub fn equal_labels(&self) -> bool {
        self.parent == self.child
    }

    /// Rank of the pattern representing this digram:
    /// `rank(parent) + rank(child) − 1`.
    pub fn pattern_rank(&self, g: &Grammar) -> usize {
        label_rank(g, self.parent) + label_rank(g, self.child) - 1
    }

    /// Deterministic sort key used to break frequency ties.
    pub fn sort_key(&self) -> (u8, u32, usize, u8, u32) {
        let (pt, pid) = kind_key(self.parent);
        let (ct, cid) = kind_key(self.child);
        (pt, pid, self.child_index, ct, cid)
    }
}

/// Rank of a digram component: terminal ranks come from the symbol table,
/// pattern nonterminals from their rule.
pub fn label_rank(g: &Grammar, kind: NodeKind) -> usize {
    match kind {
        NodeKind::Term(t) => g.symbols.rank(t),
        NodeKind::Nt(nt) => g.rule(nt).rank,
        NodeKind::Param(_) => 0,
    }
}

/// Human-readable name of a digram component.
pub fn label_name(g: &Grammar, kind: NodeKind) -> String {
    match kind {
        NodeKind::Term(t) => g.symbols.name(t).to_string(),
        NodeKind::Nt(nt) => g.rule(nt).name.clone(),
        NodeKind::Param(i) => format!("y{}", i + 1),
    }
}

fn kind_key(kind: NodeKind) -> (u8, u32) {
    match kind {
        NodeKind::Term(t) => (0, t.0),
        NodeKind::Nt(nt) => (1, nt.0),
        NodeKind::Param(i) => (2, i),
    }
}

/// Builds the pattern tree `t_X` representing a digram (paper Section II):
/// `a(y1, …, y_{i−1}, b(y_i, …, y_{i+n−1}), y_{i+n}, …, y_{m+n−1})`.
pub fn pattern_rhs(g: &Grammar, digram: &Digram) -> sltgrammar::RhsTree {
    use sltgrammar::RhsTree;
    let m = label_rank(g, digram.parent);
    let n = label_rank(g, digram.child);
    let i = digram.child_index;
    assert!(i < m, "child index must be a valid child of the parent label");

    let mut tree = RhsTree::singleton(digram.parent);
    let root = tree.root();
    let mut param = 0u32;
    for slot in 0..m {
        if slot == i {
            let child = tree.add_leaf(digram.child);
            for _ in 0..n {
                let y = tree.add_leaf(NodeKind::Param(param));
                param += 1;
                tree.push_child(child, y);
            }
            tree.push_child(root, child);
        } else {
            let y = tree.add_leaf(NodeKind::Param(param));
            param += 1;
            tree.push_child(root, y);
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::text::{parse_grammar, print_grammar};
    use sltgrammar::NodeKind;

    #[test]
    fn pattern_matches_paper_definition() {
        // a has rank 2, b has rank 2: (a, 1, b) — paper indices — is child_index 0 here.
        let g = parse_grammar("S -> a(b(#,#),#)").unwrap();
        let a = g.symbols.get("a").unwrap();
        let b = g.symbols.get("b").unwrap();
        let d = Digram {
            parent: NodeKind::Term(a),
            child_index: 0,
            child: NodeKind::Term(b),
        };
        assert_eq!(d.pattern_rank(&g), 3);
        let mut g2 = g.clone();
        let rhs = pattern_rhs(&g, &d);
        let x = g2.add_rule("X", 3, rhs);
        let _ = x;
        let printed = print_grammar(&g2);
        assert!(printed.contains("X -> a(b(y1,y2),y3)"));
    }

    #[test]
    fn pattern_for_second_child_places_parameters_around() {
        let g = parse_grammar("S -> a(#,b(#,#))").unwrap();
        let a = g.symbols.get("a").unwrap();
        let b = g.symbols.get("b").unwrap();
        let d = Digram {
            parent: NodeKind::Term(a),
            child_index: 1,
            child: NodeKind::Term(b),
        };
        let mut g2 = g.clone();
        let rhs = pattern_rhs(&g, &d);
        g2.add_rule("X", 3, rhs);
        assert!(print_grammar(&g2).contains("X -> a(y1,b(y2,y3))"));
    }

    #[test]
    fn null_child_digram_has_rank_one() {
        let g = parse_grammar("S -> a(#,#)").unwrap();
        let a = g.symbols.get("a").unwrap();
        let null = g.symbols.get("#").unwrap();
        let d = Digram {
            parent: NodeKind::Term(a),
            child_index: 0,
            child: NodeKind::Term(null),
        };
        assert_eq!(d.pattern_rank(&g), 1);
        let mut g2 = g.clone();
        let rhs = pattern_rhs(&g, &d);
        g2.add_rule("X", 1, rhs);
        assert!(print_grammar(&g2).contains("X -> a(#,y1)"));
    }

    #[test]
    fn equal_labels_detection_and_sort_key_are_stable() {
        let g = parse_grammar("S -> a(a(#,#),#)").unwrap();
        let a = g.symbols.get("a").unwrap();
        let d = Digram {
            parent: NodeKind::Term(a),
            child_index: 0,
            child: NodeKind::Term(a),
        };
        assert!(d.equal_labels());
        assert_eq!(d.sort_key(), d.sort_key());
    }
}
