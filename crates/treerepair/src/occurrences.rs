//! Maintenance of non-overlapping digram occurrence sets on a tree.
//!
//! TreeRePair keeps, for every digram, the maximal set of pairwise
//! non-overlapping occurrences found by a greedy top-down traversal. During
//! replacement the sets are updated incrementally ("updating the context",
//! paper Section IV-C) instead of being recounted from scratch.

use std::collections::{HashMap, HashSet};

use sltgrammar::{NodeId, RhsTree};

use crate::digram::Digram;

/// Occurrences of one digram. An occurrence `(v, w)` is identified by its child
/// node `w` (the parent is unique); the parent set is kept to detect overlaps of
/// equal-label digrams.
#[derive(Debug, Default, Clone)]
pub struct Occurrences {
    children: HashSet<NodeId>,
    parents: HashSet<NodeId>,
}

impl Occurrences {
    /// Number of recorded (non-overlapping) occurrences.
    pub fn count(&self) -> usize {
        self.children.len()
    }

    /// The child nodes identifying the occurrences, in deterministic order.
    pub fn children_sorted(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.children.iter().copied().collect();
        v.sort();
        v
    }

    fn would_overlap(&self, parent: NodeId, child: NodeId) -> bool {
        self.parents.contains(&child) || self.children.contains(&parent)
    }
}

/// Table of digram occurrences over one working tree.
#[derive(Debug, Default, Clone)]
pub struct OccTable {
    map: HashMap<Digram, Occurrences>,
}

impl OccTable {
    /// Builds the table by one preorder (top-down greedy) scan of `tree`.
    pub fn scan(tree: &RhsTree) -> Self {
        let mut table = OccTable::default();
        for node in tree.preorder() {
            let Some(parent) = tree.parent(node) else { continue };
            let child_index = tree
                .child_index(node)
                .expect("non-root node has a child index");
            let digram = Digram {
                parent: tree.kind(parent),
                child_index,
                child: tree.kind(node),
            };
            table.add(digram, parent, node);
        }
        table
    }

    /// Records an occurrence, unless it would overlap with an already recorded
    /// occurrence of the same equal-label digram.
    pub fn add(&mut self, digram: Digram, parent: NodeId, child: NodeId) {
        let entry = self.map.entry(digram).or_default();
        if digram.equal_labels() && entry.would_overlap(parent, child) {
            return;
        }
        entry.children.insert(child);
        entry.parents.insert(parent);
    }

    /// Removes an occurrence if present (no-op otherwise).
    pub fn remove(&mut self, digram: &Digram, parent: NodeId, child: NodeId) {
        if let Some(entry) = self.map.get_mut(digram) {
            if entry.children.remove(&child) {
                entry.parents.remove(&parent);
            }
            if entry.children.is_empty() {
                self.map.remove(digram);
            }
        }
    }

    /// Drops all occurrences of a digram (after its replacement round).
    pub fn remove_digram(&mut self, digram: &Digram) {
        self.map.remove(digram);
    }

    /// Number of occurrences currently recorded for `digram`.
    pub fn count(&self, digram: &Digram) -> usize {
        self.map.get(digram).map(|o| o.count()).unwrap_or(0)
    }

    /// Iterates over all digrams and their occurrence sets.
    pub fn iter(&self) -> impl Iterator<Item = (&Digram, &Occurrences)> {
        self.map.iter()
    }

    /// Number of distinct digrams currently tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::text::parse_grammar;
    use sltgrammar::NodeKind;

    fn digram_by_names(
        g: &sltgrammar::Grammar,
        parent: &str,
        child_index: usize,
        child: &str,
    ) -> Digram {
        Digram {
            parent: NodeKind::Term(g.symbols.get(parent).unwrap()),
            child_index,
            child: NodeKind::Term(g.symbols.get(child).unwrap()),
        }
    }

    #[test]
    fn scan_counts_simple_digrams() {
        // f(a(#,#), a(#,#)): digram (f,0,a) x1, (f,1,a) x1, (a,0,#) x2, (a,1,#) x2.
        let g = parse_grammar("S -> f(a(#,#),a(#,#))").unwrap();
        let table = OccTable::scan(&g.rule(g.start()).rhs);
        assert_eq!(table.count(&digram_by_names(&g, "a", 0, "#")), 2);
        assert_eq!(table.count(&digram_by_names(&g, "a", 1, "#")), 2);
        assert_eq!(table.count(&digram_by_names(&g, "f", 0, "a")), 1);
        assert_eq!(table.count(&digram_by_names(&g, "f", 1, "a")), 1);
    }

    #[test]
    fn equal_label_chains_count_non_overlapping_occurrences() {
        // A chain of four a's along the second child: occurrences of (a,1,a) pair
        // up greedily top-down: (1,2) and (3,4) => 2 non-overlapping occurrences.
        let g = parse_grammar("S -> a(#,a(#,a(#,a(#,#))))").unwrap();
        let table = OccTable::scan(&g.rule(g.start()).rhs);
        assert_eq!(table.count(&digram_by_names(&g, "a", 1, "a")), 2);

        // With five a's the greedy pairing still yields 2.
        let g5 = parse_grammar("S -> a(#,a(#,a(#,a(#,a(#,#)))))").unwrap();
        let t5 = OccTable::scan(&g5.rule(g5.start()).rhs);
        assert_eq!(t5.count(&digram_by_names(&g5, "a", 1, "a")), 2);
    }

    #[test]
    fn figure1_overlap_example() {
        // The tree of Figure 1: occurrences of (a,2,a) marked in the paper — the
        // greedy scan records the two outer (non-overlapping) ones.
        let g = parse_grammar("S -> f(a(a(#,a(#,#)),a(a(#,a(#,#)),#)),#)").unwrap();
        let table = OccTable::scan(&g.rule(g.start()).rhs);
        // (a,2,a) in paper notation: (a1,a4), (a2,a3) and (a5,a6) are pairwise
        // node-disjoint, so the greedy scan keeps all three.
        assert_eq!(table.count(&digram_by_names(&g, "a", 1, "a")), 3);
        assert_eq!(table.count(&digram_by_names(&g, "a", 0, "a")), 2);
    }

    #[test]
    fn add_remove_roundtrip() {
        let g = parse_grammar("S -> f(a(#,#),a(#,#))").unwrap();
        let rhs = &g.rule(g.start()).rhs;
        let mut table = OccTable::scan(rhs);
        let d = digram_by_names(&g, "a", 0, "#");
        let occ = table.map.get(&d).unwrap().children_sorted();
        assert_eq!(occ.len(), 2);
        let child = occ[0];
        let parent = rhs.parent(child).unwrap();
        table.remove(&d, parent, child);
        assert_eq!(table.count(&d), 1);
        // Removing a non-existent occurrence is a no-op.
        table.remove(&d, parent, child);
        assert_eq!(table.count(&d), 1);
        table.remove_digram(&d);
        assert_eq!(table.count(&d), 0);
    }
}
