//! Maintenance of non-overlapping digram occurrence sets on a tree.
//!
//! TreeRePair keeps, for every digram, the maximal set of pairwise
//! non-overlapping occurrences found by a greedy top-down traversal. During
//! replacement the sets are updated incrementally ("updating the context",
//! paper Section IV-C) instead of being recounted from scratch.
//!
//! The table doubles as the selection data structure: every
//! [`OccTable::add`] / [`OccTable::remove`] forwards the digram's count change
//! to an embedded [`FrequencyBucketQueue`], so
//! [`OccTable::select_best`] answers "most frequent eligible digram" without
//! scanning the table — the per-round full scan this replaces made the
//! compression loop quadratic in the number of distinct digrams.
//!
//! Occurrence child sets are ordered ([`BTreeSet`]), so draining the
//! replacement targets of the selected digram
//! ([`OccTable::collect_children_into`]) reuses a caller buffer and never
//! re-sorts.

use std::collections::BTreeSet;

use sltgrammar::{FxHashMap, FxHashSet, NodeId, RhsTree};

use crate::digram::Digram;
use crate::queue::FrequencyBucketQueue;

/// Occurrences of one digram. An occurrence `(v, w)` is identified by its child
/// node `w` (the parent is unique); the parent set is kept to detect overlaps of
/// equal-label digrams.
#[derive(Debug, Default, Clone)]
pub struct Occurrences {
    /// Child nodes, kept ordered so deterministic iteration needs no sorting.
    children: BTreeSet<NodeId>,
    parents: FxHashSet<NodeId>,
}

impl Occurrences {
    /// Number of recorded (non-overlapping) occurrences.
    pub fn count(&self) -> usize {
        self.children.len()
    }

    /// The child nodes identifying the occurrences, in ascending order.
    pub fn children_sorted(&self) -> Vec<NodeId> {
        self.children.iter().copied().collect()
    }

    fn would_overlap(&self, parent: NodeId, child: NodeId) -> bool {
        self.parents.contains(&child) || self.children.contains(&parent)
    }
}

/// Table of digram occurrences over one working tree, with an embedded
/// frequency-bucket queue answering max-frequency queries incrementally.
#[derive(Debug, Default, Clone)]
pub struct OccTable {
    map: FxHashMap<Digram, Occurrences>,
    queue: FrequencyBucketQueue,
}

impl OccTable {
    /// Builds the table by one preorder (top-down greedy) scan of `tree`.
    pub fn scan(tree: &RhsTree) -> Self {
        let mut table = OccTable::default();
        for node in tree.preorder() {
            let Some(parent) = tree.parent(node) else { continue };
            let child_index = tree
                .child_index(node)
                .expect("non-root node has a child index");
            let digram = Digram {
                parent: tree.kind(parent),
                child_index,
                child: tree.kind(node),
            };
            table.add(digram, parent, node);
        }
        table
    }

    /// Records an occurrence, unless it would overlap with an already recorded
    /// occurrence of the same equal-label digram. The digram's queue bucket is
    /// updated in the same step.
    pub fn add(&mut self, digram: Digram, parent: NodeId, child: NodeId) {
        let entry = self.map.entry(digram).or_default();
        if digram.equal_labels() && entry.would_overlap(parent, child) {
            return;
        }
        let old = entry.children.len() as u64;
        if entry.children.insert(child) {
            entry.parents.insert(parent);
            self.queue.update(&digram, old, old + 1);
        }
    }

    /// Removes an occurrence if present (no-op otherwise), updating the
    /// digram's queue bucket.
    pub fn remove(&mut self, digram: &Digram, parent: NodeId, child: NodeId) {
        if let Some(entry) = self.map.get_mut(digram) {
            let old = entry.children.len() as u64;
            if entry.children.remove(&child) {
                entry.parents.remove(&parent);
                self.queue.update(digram, old, old - 1);
            }
            if entry.children.is_empty() {
                self.map.remove(digram);
            }
        }
    }

    /// Drops all occurrences of a digram (after its replacement round).
    pub fn remove_digram(&mut self, digram: &Digram) {
        if let Some(entry) = self.map.remove(digram) {
            self.queue.update(digram, entry.children.len() as u64, 0);
        }
    }

    /// Number of occurrences currently recorded for `digram`.
    pub fn count(&self, digram: &Digram) -> usize {
        self.map.get(digram).map(|o| o.count()).unwrap_or(0)
    }

    /// Clears `buf` and fills it with the child nodes identifying `digram`'s
    /// occurrences in ascending order. A direct map lookup plus an ordered
    /// copy — no table scan, no sort; the buffer is reusable across rounds.
    pub fn collect_children_into(&self, digram: &Digram, buf: &mut Vec<NodeId>) {
        buf.clear();
        if let Some(entry) = self.map.get(digram) {
            buf.extend(entry.children.iter().copied());
        }
    }

    /// Most frequent digram with at least `min_count` occurrences among those
    /// accepted by `eligible`, ties broken by smallest [`Digram::sort_key`] —
    /// the same digram a full scan of the table would select, computed from the
    /// incrementally maintained buckets. Digrams rejected by `eligible` are
    /// excluded permanently (pattern ranks never change), so the eligibility
    /// test runs at most once per digram over the whole compression run.
    pub fn select_best(
        &mut self,
        min_count: usize,
        eligible: impl FnMut(&Digram) -> bool,
    ) -> Option<Digram> {
        self.queue.pop_best(min_count as u64, eligible)
    }

    /// Iterates over all digrams and their occurrence sets.
    pub fn iter(&self) -> impl Iterator<Item = (&Digram, &Occurrences)> {
        self.map.iter()
    }

    /// Number of distinct digrams currently tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::text::parse_grammar;
    use sltgrammar::NodeKind;

    fn digram_by_names(
        g: &sltgrammar::Grammar,
        parent: &str,
        child_index: usize,
        child: &str,
    ) -> Digram {
        Digram {
            parent: NodeKind::Term(g.symbols.get(parent).unwrap()),
            child_index,
            child: NodeKind::Term(g.symbols.get(child).unwrap()),
        }
    }

    #[test]
    fn scan_counts_simple_digrams() {
        // f(a(#,#), a(#,#)): digram (f,0,a) x1, (f,1,a) x1, (a,0,#) x2, (a,1,#) x2.
        let g = parse_grammar("S -> f(a(#,#),a(#,#))").unwrap();
        let table = OccTable::scan(&g.rule(g.start()).rhs);
        assert_eq!(table.count(&digram_by_names(&g, "a", 0, "#")), 2);
        assert_eq!(table.count(&digram_by_names(&g, "a", 1, "#")), 2);
        assert_eq!(table.count(&digram_by_names(&g, "f", 0, "a")), 1);
        assert_eq!(table.count(&digram_by_names(&g, "f", 1, "a")), 1);
    }

    #[test]
    fn equal_label_chains_count_non_overlapping_occurrences() {
        // A chain of four a's along the second child: occurrences of (a,1,a) pair
        // up greedily top-down: (1,2) and (3,4) => 2 non-overlapping occurrences.
        let g = parse_grammar("S -> a(#,a(#,a(#,a(#,#))))").unwrap();
        let table = OccTable::scan(&g.rule(g.start()).rhs);
        assert_eq!(table.count(&digram_by_names(&g, "a", 1, "a")), 2);

        // With five a's the greedy pairing still yields 2.
        let g5 = parse_grammar("S -> a(#,a(#,a(#,a(#,a(#,#)))))").unwrap();
        let t5 = OccTable::scan(&g5.rule(g5.start()).rhs);
        assert_eq!(t5.count(&digram_by_names(&g5, "a", 1, "a")), 2);
    }

    #[test]
    fn figure1_overlap_example() {
        // The tree of Figure 1: occurrences of (a,2,a) marked in the paper — the
        // greedy scan records the two outer (non-overlapping) ones.
        let g = parse_grammar("S -> f(a(a(#,a(#,#)),a(a(#,a(#,#)),#)),#)").unwrap();
        let table = OccTable::scan(&g.rule(g.start()).rhs);
        // (a,2,a) in paper notation: (a1,a4), (a2,a3) and (a5,a6) are pairwise
        // node-disjoint, so the greedy scan keeps all three.
        assert_eq!(table.count(&digram_by_names(&g, "a", 1, "a")), 3);
        assert_eq!(table.count(&digram_by_names(&g, "a", 0, "a")), 2);
    }

    #[test]
    fn add_remove_roundtrip() {
        let g = parse_grammar("S -> f(a(#,#),a(#,#))").unwrap();
        let rhs = &g.rule(g.start()).rhs;
        let mut table = OccTable::scan(rhs);
        let d = digram_by_names(&g, "a", 0, "#");
        let occ = table.map.get(&d).unwrap().children_sorted();
        assert_eq!(occ.len(), 2);
        let child = occ[0];
        let parent = rhs.parent(child).unwrap();
        table.remove(&d, parent, child);
        assert_eq!(table.count(&d), 1);
        // Removing a non-existent occurrence is a no-op.
        table.remove(&d, parent, child);
        assert_eq!(table.count(&d), 1);
        table.remove_digram(&d);
        assert_eq!(table.count(&d), 0);
    }

    #[test]
    fn select_best_matches_a_full_scan() {
        let g = parse_grammar("S -> f(a(#,#),f(a(#,#),a(#,#)))").unwrap();
        let mut table = OccTable::scan(&g.rule(g.start()).rhs);
        // Full-scan reference: max count, ties by smallest sort key.
        let expected = table
            .iter()
            .filter(|(_, o)| o.count() >= 2)
            .max_by(|(d1, o1), (d2, o2)| {
                o1.count()
                    .cmp(&o2.count())
                    .then_with(|| d2.sort_key().cmp(&d1.sort_key()))
            })
            .map(|(d, _)| *d);
        assert_eq!(table.select_best(2, |_| true), expected);
    }

    #[test]
    fn collect_children_reuses_the_buffer() {
        let g = parse_grammar("S -> f(a(#,#),a(#,#))").unwrap();
        let mut table = OccTable::scan(&g.rule(g.start()).rhs);
        let d = digram_by_names(&g, "a", 0, "#");
        let mut buf = vec![NodeId(999)];
        table.collect_children_into(&d, &mut buf);
        assert_eq!(buf.len(), 2);
        assert!(buf.windows(2).all(|w| w[0] < w[1]), "buffer must be sorted");
        table.remove_digram(&d);
        table.collect_children_into(&d, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn queue_follows_incremental_updates() {
        let g = parse_grammar("S -> f(a(#,#),a(#,#))").unwrap();
        let rhs = &g.rule(g.start()).rhs;
        let mut table = OccTable::scan(rhs);
        let d = digram_by_names(&g, "a", 0, "#");
        assert_eq!(table.select_best(2, |_| true), Some(d));
        // Removing one occurrence drops (a,0,#) to count 1; the other
        // two-occurrence digram (a,1,#) takes over.
        let child = table.map.get(&d).unwrap().children_sorted()[0];
        let parent = rhs.parent(child).unwrap();
        table.remove(&d, parent, child);
        assert_eq!(
            table.select_best(2, |_| true),
            Some(digram_by_names(&g, "a", 1, "#"))
        );
    }
}
