//! # slt-xml — incremental updates on compressed XML (ICDE 2016 reproduction)
//!
//! Facade crate re-exporting the whole workspace: the SLCF grammar substrate,
//! the XML structure model, the TreeRePair baseline, GrammarRePair with
//! grammar updates, the synthetic evaluation corpus, and the related-work
//! baselines (minimal DAG sharing and succinct DOM trees). The runnable
//! examples in `examples/` and the cross-crate integration and property tests
//! in `tests/` live on this crate.
//!
//! See the individual crates for the full API documentation:
//! [`sltgrammar`], [`xmltree`], [`treerepair`], [`grammar_repair`],
//! [`datasets`], [`dag_xml`], [`succinct_xml`].

#![warn(missing_docs)]

pub use dag_xml;
pub use datasets;
pub use grammar_repair;
pub use sltgrammar;
pub use succinct_xml;
pub use treerepair;
pub use xmltree;

/// Convenience re-export of the high-level mutable compressed document handle.
pub use grammar_repair::session::CompressedDom;

/// Convenience re-export of the multi-document session: many compressed
/// documents behind one shared symbol table and a debt-based recompression
/// scheduler.
pub use grammar_repair::store::{DocId, DomStore, Snapshot};

/// Convenience re-export of the crash-safe store: a [`DomStore`] behind a
/// write-ahead log with checkpointing and recovery.
pub use grammar_repair::durable::{CheckpointReport, DurableStore, RecoveryReport};

/// Convenience re-export of the ingestion queue that coalesces submitted
/// batches into single group-committed WAL records in front of a
/// [`DurableStore`].
pub use grammar_repair::queue::IngestQueue;

/// Convenience re-export of the network service edge: a wire-protocol
/// server over the ingestion queue and its reconnecting, pipelining
/// client library.
pub use grammar_repair::client::{Client, ClientConfig, Endpoint};
/// Convenience re-export of the wire-protocol server (see [`Client`]).
pub use grammar_repair::server::{Server, ServerConfig};

/// Convenience re-export of the read-only navigation cursor over a grammar.
pub use grammar_repair::navigate::Cursor;

/// Convenience re-export of the path-query engine over compressed documents.
pub use grammar_repair::query::PathQuery;
